// Package diagnose is the fleet-scale diagnosis plane: it closes the
// paper's observation pipeline (Sect. 4.1/4.4) end-to-end over the
// production fleet stack. Devices carry a spectral flight recorder
// (Recorder): per-heartbeat-window block-coverage bitsets over the shared
// synthetic program layout, plus the hwmon event ring. When the recovery
// control plane escalates a device past tolerate — the moment a device has
// demonstrably not healed — the diagnosis Engine pulls coverage snapshots
// from the escalated device *and* a sampled cohort of healthy peers over
// the wire (TypeSnapshotReq/TypeSnapshot frames), labels them fail/pass,
// journals each labeled snapshot write-ahead, and folds the windows into a
// sharded fleet-level spectrum.Spectra. The output is a spectrum-based
// fault-localization ranking (Ochiai by default) naming the code block
// whose execution best explains the failing devices, plus an FMEA-weighted
// component verdict — the paper's "which block contains the fault" result,
// computed across a live fleet instead of a bench scenario.
//
// Because the labeled evidence is journaled before folding and the fold is
// a pure counter sum, Replay reconstructs the exact ranking offline from
// the journal alone: `traderd -replay` prints byte-identical diagnosis
// output for any journal a live run produced.
package diagnose

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"trader/internal/control"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/trace"
	"trader/internal/wire"
)

// ErrClosed is returned by Recover when the engine is closed mid-recovery.
var ErrClosed = errors.New("diagnose: engine closed")

// Requester pulls a coverage snapshot from one device. fleet.Server
// implements it; a nil requester (tests, offline) makes the engine fold
// only evidence that is fed to it directly.
type Requester interface {
	RequestSnapshot(id string) error
}

// Options configures an Engine.
type Options struct {
	// Requester delivers snapshot pulls to devices. Optional.
	Requester Requester
	// Journal, when non-nil, records every accepted labeled snapshot
	// write-ahead of folding it (the same journal the ingestion server and
	// recovery controller write). Optional, but required for -replay to
	// reconstruct rankings.
	Journal fleet.FrameJournal
	// Coeff is the similarity coefficient (default spectrum.Ochiai).
	Coeff spectrum.Coefficient
	// Blocks is the fleet's instrumented block count (default
	// DefaultBlocks). Snapshots with a different block count are rejected
	// as malformed — spectra only compare within one layout.
	Blocks int
	// Stripes is the Spectra stripe count (default GOMAXPROCS).
	Stripes int
	// Cohort is how many healthy peers are sampled per escalation episode
	// (default DefaultCohort). More peers exonerate more shared code.
	Cohort int
	// Requery is the minimum virtual-time gap between two episodes for the
	// same device (default DefaultRequery; negative disables the gap). A
	// persistently failing device reports on every comparison sweep —
	// without the gap each report past tolerate would re-pull the whole
	// cohort for near-identical evidence. It doubles as the pull expiry: a
	// pull unanswered for this long (a device that disconnected mid-pull,
	// an answer shed on overload) is written off, so the device becomes
	// diagnosable and cohort-eligible again instead of pending forever.
	Requery sim.Time
	// Logf, when non-nil, receives episode and lifecycle log lines.
	Logf func(format string, args ...any)
	// Inbox is the work queue length (default 1024). Items beyond it are
	// shed and counted in Rollup().Dropped.
	Inbox int
	// Continuous enables the always-on diagnosis mode: devices piggyback
	// sparse spectrum deltas on their heartbeat cadence
	// (TypeSpectrumDelta; wire HandleSpectrumDelta to
	// fleet.Server.OnSpectrumDelta) and the engine folds each delta the
	// moment it arrives, labeled by the live suspect set — a device the
	// control plane has escalated folds as "fail", everyone else as
	// "pass". Escalation pulls still run; the fold high-water marks keep
	// deltas and pulled snapshots from ever double-counting a window.
	Continuous bool
	// TrackTop is the incremental top-K depth the accumulators maintain
	// under continuous folds (default DefaultTrackTop when Continuous,
	// else off). Result calls with n ≤ TrackTop answer from the tracked
	// candidates in O(K log K) instead of re-scanning every block.
	TrackTop int
	// Tracer, when non-nil, records diagnose spans (§6.2): episodic
	// snapshot folds — escalation traffic — are traced forced, while
	// continuous heartbeat-delta folds go through the sampling gate, so a
	// high-rate delta stream cannot lap the forced ring the control plane's
	// spans live in.
	Tracer *trace.Tracer
}

// itemKind discriminates inbox items.
type itemKind int

const (
	itemAction itemKind = iota
	itemSnapshot
	itemDelta
	itemEvidence
	itemResult
	itemRollup
	itemSync
	itemCheckpoint
	itemRestore
	itemStop
)

// item is one unit of inbox work.
type item struct {
	kind    itemKind
	device  string
	action  control.Action
	msg     wire.Message
	topN    int
	result  chan *Result
	rollup  chan Rollup
	sync    chan struct{}
	cpReply chan wire.Message
	restore *wire.Checkpoint
	errc    chan error
}

// tally is the engine's accounting. Owned by the engine goroutine.
type tally struct {
	Escalations     uint64 // escalation actions observed
	Episodes        uint64 // diagnosis episodes opened (pull rounds)
	Coalesced       uint64 // escalations absorbed by an in-flight episode
	Requests        uint64 // snapshot pulls pushed
	RequestFailures uint64 // pulls that could not be delivered
	Snapshots       uint64 // labeled snapshots folded
	Deltas          uint64 // heartbeat spectrum deltas accepted (continuous mode)
	FailWindows     uint64
	PassWindows     uint64
	SkippedWindows  uint64 // windows not folded: no coverage, still open, or already folded
	Unsolicited     uint64 // snapshots from devices never asked
	Malformed       uint64 // snapshots with a foreign block count (or none)
	Expired         uint64 // pulls written off unanswered after the expiry
	JournalErrors   uint64
}

// pull is one outstanding snapshot request: the label its answer will fold
// under and the episode's virtual time (for expiry).
type pull struct {
	label string
	at    sim.Time
}

// Engine drives fleet diagnosis: one goroutine consuming escalations and
// snapshots, a sharded Spectra owning the evidence, and the pending-pull
// bookkeeping. All exported methods are safe for concurrent use.
type Engine struct {
	pool   *fleet.Pool
	opts   Options
	coeff  spectrum.Coefficient
	layout *Layout

	spectra *spectrum.Spectra
	fold    *folder
	pending map[string]pull     // device → outstanding pull awaiting its snapshot
	lastEp  map[string]sim.Time // device → virtual time of its last episode
	// suspects is the live fail-label set of continuous mode: devices the
	// control plane has escalated. A suspect's heartbeat deltas fold as
	// "fail" into its own verdict partition; everyone else's fold as
	// "pass". The label is journaled on each delta record, so Replay never
	// needs this set.
	suspects map[string]bool
	tally    tally

	inbox chan item
	done  chan struct{}

	lifeMu sync.Mutex
	closed bool

	dropped atomic.Uint64
}

// Attach builds the diagnosis engine over the pool and starts its
// goroutine. Wire HandleAction to control.Options.OnEscalate and
// HandleSnapshot to fleet.Server.OnSnapshot; Close stops it.
func Attach(pool *fleet.Pool, opts Options) *Engine {
	if opts.Coeff.F == nil {
		opts.Coeff = spectrum.Ochiai
	}
	if opts.Blocks <= 0 {
		opts.Blocks = DefaultBlocks
	}
	if opts.Cohort <= 0 {
		opts.Cohort = DefaultCohort
	}
	if opts.Inbox <= 0 {
		opts.Inbox = 1024
	}
	if opts.Requery == 0 {
		opts.Requery = DefaultRequery
	}
	if opts.Continuous && opts.TrackTop <= 0 {
		opts.TrackTop = DefaultTrackTop
	}
	e := &Engine{
		pool:     pool,
		opts:     opts,
		coeff:    opts.Coeff,
		layout:   NewLayout(opts.Blocks),
		spectra:  spectrum.NewSpectra(opts.Blocks, opts.Stripes),
		pending:  make(map[string]pull),
		lastEp:   make(map[string]sim.Time),
		suspects: make(map[string]bool),
		inbox:    make(chan item, opts.Inbox),
		done:     make(chan struct{}),
	}
	e.fold = newFolder(e.spectra, opts.TrackTop)
	go e.loop()
	return e
}

func (e *Engine) logf(format string, args ...any) {
	if e.opts.Logf != nil {
		e.opts.Logf(format, args...)
	}
}

// put enqueues an item unless the engine is closed. Non-blocking puts
// (actions, snapshots — they run on controller and connection goroutines)
// shed on a full inbox; blocking puts wait for a slot.
func (e *Engine) put(it item, wait bool) bool {
	e.lifeMu.Lock()
	defer e.lifeMu.Unlock()
	if e.closed {
		return false
	}
	if wait {
		e.inbox <- it
		return true
	}
	select {
	case e.inbox <- it:
		return true
	default:
		e.dropped.Add(1)
		return false
	}
}

// HandleAction feeds one escalation action into the engine; wire it to
// control.Options.OnEscalate. Safe from any goroutine, never blocks.
func (e *Engine) HandleAction(a control.Action) {
	e.put(item{kind: itemAction, action: a}, false)
}

// HandleSnapshot feeds one device snapshot into the engine; wire it to
// fleet.Server.OnSnapshot. Safe from any goroutine, never blocks.
func (e *Engine) HandleSnapshot(id string, m wire.Message) {
	e.put(item{kind: itemSnapshot, device: id, msg: m}, false)
}

// HandleSpectrumDelta feeds one heartbeat spectrum delta into the engine;
// wire it to fleet.Server.OnSpectrumDelta. Safe from any goroutine, never
// blocks; outside continuous mode deltas are dropped unfolded.
func (e *Engine) HandleSpectrumDelta(id string, m wire.Message) {
	if !e.opts.Continuous {
		return
	}
	e.put(item{kind: itemDelta, device: id, msg: m}, false)
}

// Sync blocks until every item enqueued before it has been processed.
func (e *Engine) Sync() {
	ch := make(chan struct{})
	if e.put(item{kind: itemSync, sync: ch}, true) {
		<-ch
	}
}

// Close stops the engine goroutine. Evidence arriving after Close is
// dropped silently; Result and Rollup keep working on the frozen state.
func (e *Engine) Close() {
	e.lifeMu.Lock()
	if e.closed {
		e.lifeMu.Unlock()
		<-e.done
		return
	}
	e.closed = true
	e.inbox <- item{kind: itemStop}
	e.lifeMu.Unlock()
	<-e.done
}

// Result computes the current fleet diagnosis with the top n suspects. It
// is a barrier: evidence enqueued before it is reflected. On a closed
// engine it reads the frozen state directly.
func (e *Engine) Result(n int) *Result {
	reply := make(chan *Result, 1)
	if e.put(item{kind: itemResult, topN: n, result: reply}, true) {
		return <-reply
	}
	<-e.done
	return buildFolderResult(e.fold, e.layout, e.coeff, n)
}

func (e *Engine) loop() {
	defer close(e.done)
	for it := range e.inbox {
		switch it.kind {
		case itemStop:
			return
		case itemSync:
			close(it.sync)
		case itemResult:
			it.result <- buildFolderResult(e.fold, e.layout, e.coeff, it.topN)
		case itemRollup:
			it.rollup <- e.rollup()
		case itemCheckpoint:
			it.cpReply <- e.checkpoint()
		case itemRestore:
			it.errc <- e.restoreCheckpoint(it.restore)
		case itemAction:
			e.handleAction(it.action)
		case itemSnapshot:
			e.handleSnapshot(it.device, it.msg)
		case itemDelta:
			e.handleDelta(it.device, it.msg)
		case itemEvidence:
			e.foldEvidence(it.msg)
		}
	}
}

// handleAction opens a diagnosis episode for an escalated device: pull a
// snapshot from the suspect and from a sampled healthy cohort. Escalations
// for a device whose pull is still outstanding coalesce into it; pulls
// unanswered past the expiry are written off first, so a device that
// vanished mid-pull (disconnect, shed answer) cannot starve its own
// diagnosis — or block cohort membership — forever.
func (e *Engine) handleAction(a control.Action) {
	e.tally.Escalations++
	e.suspects[a.Device] = true
	// A negative Requery disables the episode gap, and with it the grace a
	// pull gets before being written off: expiry 0 means any pull from an
	// earlier instant is expired now. Only the unset (zero) value falls
	// back to the default — previously a negative value did too, which
	// left a device that vanished mid-pull pinned as in-flight for the
	// full default window despite the caller asking for no gap at all.
	expiry := e.opts.Requery
	if expiry == 0 {
		expiry = DefaultRequery
	} else if expiry < 0 {
		expiry = 0
	}
	for id, p := range e.pending {
		if a.At-p.at > expiry {
			delete(e.pending, id)
			e.tally.Expired++
			e.logf("diagnose: pull of %s expired unanswered", id)
		}
	}
	if _, busy := e.pending[a.Device]; busy {
		e.tally.Coalesced++
		return
	}
	if last, ok := e.lastEp[a.Device]; ok && e.opts.Requery > 0 && a.At-last < e.opts.Requery {
		e.tally.Coalesced++
		return
	}
	e.lastEp[a.Device] = a.At
	e.tally.Episodes++
	cohort := e.sampleCohort(a.Device)
	e.pending[a.Device] = pull{label: LabelFail, at: a.At}
	for _, id := range cohort {
		e.pending[id] = pull{label: LabelPass, at: a.At}
	}
	e.logf("diagnose: %s escalated (%s): pulling snapshots from it + %d healthy peers",
		a.Device, a.Rung, len(cohort))
	if e.opts.Requester == nil {
		return
	}
	for _, id := range append([]string{a.Device}, cohort...) {
		if err := e.opts.Requester.RequestSnapshot(id); err != nil {
			e.tally.RequestFailures++
			delete(e.pending, id)
			e.logf("diagnose: pull %s: %v", id, err)
		} else {
			e.tally.Requests++
		}
	}
}

// sampleCohort picks up to Cohort healthy comparison peers, deterministically
// spread by the suspect's identity: the sorted healthy-device list is
// entered at a suspect-derived offset and taken round-robin, skipping the
// suspect and devices already serving another episode.
func (e *Engine) sampleCohort(suspect string) []string {
	healthy := e.pool.HealthyDevices()
	candidates := healthy[:0:0]
	for _, id := range healthy {
		if id == suspect {
			continue
		}
		if _, busy := e.pending[id]; busy {
			continue
		}
		candidates = append(candidates, id)
	}
	if len(candidates) == 0 {
		return nil
	}
	n := e.opts.Cohort
	if n > len(candidates) {
		n = len(candidates)
	}
	// FNV-1a over the suspect ID spreads repeated episodes for different
	// suspects across the fleet instead of always sampling the same peers.
	h := uint32(2166136261)
	for i := 0; i < len(suspect); i++ {
		h ^= uint32(suspect[i])
		h *= 16777619
	}
	start := int(h % uint32(len(candidates)))
	out := make([]string, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, candidates[(start+i)%len(candidates)])
	}
	return out
}

// handleSnapshot labels, journals and folds one device's evidence.
func (e *Engine) handleSnapshot(id string, m wire.Message) {
	p, ok := e.pending[id]
	if !ok {
		e.tally.Unsolicited++
		return
	}
	delete(e.pending, id)
	snap := m.Snapshot
	if snap == nil || snap.Blocks != e.opts.Blocks {
		e.tally.Malformed++
		blocks := -1
		if snap != nil {
			blocks = snap.Blocks
		}
		e.logf("diagnose: %s: malformed snapshot (blocks %d, want %d)", id, blocks, e.opts.Blocks)
		return
	}
	evidence := EvidenceFrame(id, p.label, m)
	if e.opts.Journal != nil {
		if err := e.opts.Journal.Append(evidence); err != nil {
			// Diagnosis beats the record: fold anyway and surface the
			// journal failure loudly (the replayed ranking will lag this
			// snapshot; mirror of the controller's action-journal stance).
			e.tally.JournalErrors++
			e.logf("diagnose: journal evidence from %s: %v", id, err)
		}
	}
	start := time.Now()
	folded := e.foldEvidence(evidence)
	if tr := e.opts.Tracer; tr != nil {
		tr.Span(tr.Force(), trace.KindDiagnose, -1, id, start, time.Since(start), true)
	}
	e.logf("diagnose: folded %d %s windows from %s (%d pulls outstanding)",
		folded, p.label, id, len(e.pending))
}

// handleDelta labels, journals and folds one heartbeat spectrum delta
// (continuous mode): the evidence analogue of handleSnapshot, but labeled
// by the live suspect set instead of an episode's pull bookkeeping — no
// pull is outstanding, the device volunteered the window on its heartbeat
// cadence.
func (e *Engine) handleDelta(id string, m wire.Message) {
	d := m.Delta
	if d == nil || d.Blocks != e.opts.Blocks {
		e.tally.Malformed++
		blocks := -1
		if d != nil {
			blocks = d.Blocks
		}
		e.logf("diagnose: %s: malformed delta (blocks %d, want %d)", id, blocks, e.opts.Blocks)
		return
	}
	label := LabelPass
	if e.suspects[id] {
		label = LabelFail
	}
	evidence := DeltaFrame(id, label, m)
	if e.opts.Journal != nil {
		if err := e.opts.Journal.Append(evidence); err != nil {
			e.tally.JournalErrors++
			e.logf("diagnose: journal delta from %s: %v", id, err)
		}
	}
	// Delta folds are continuous, heartbeat-cadence traffic: they go
	// through the sampling gate, not Force — a fleet's delta stream would
	// otherwise evict the control plane's forced spans within seconds.
	ctx := trace.Context{}
	var start time.Time
	if tr := e.opts.Tracer; tr != nil {
		if ctx = tr.Sample(); ctx.Live() {
			start = time.Now()
		}
	}
	e.foldEvidence(evidence)
	if ctx.Live() {
		e.opts.Tracer.Span(ctx, trace.KindDiagnose, -1, id, start, time.Since(start), false)
	}
}

// foldEvidence folds one already-labeled evidence frame (Target carries the
// label, SUO the device; the payload is a pulled snapshot or a heartbeat
// delta) into the accumulator and updates the tallies. Shared by the live
// path and Recover's boot-time warm start.
func (e *Engine) foldEvidence(m wire.Message) int {
	failed := m.Target == LabelFail
	if failed {
		// A fail label means the device was a suspect when the evidence
		// was produced. Re-marking here keeps a Recover'd engine labeling
		// the device's future deltas the way the pre-crash engine did.
		e.suspects[m.SUO] = true
	}
	if m.Type == wire.TypeSpectrumDelta {
		e.tally.Deltas++
		if !e.fold.foldDelta(m.SUO, m.Delta, failed) {
			e.tally.SkippedWindows++
			return 0
		}
		if failed {
			e.tally.FailWindows++
		} else {
			e.tally.PassWindows++
		}
		return 1
	}
	folded := e.fold.fold(m.SUO, m.Snapshot, failed)
	e.tally.Snapshots++
	e.tally.SkippedWindows += uint64(len(m.Snapshot.Windows) - folded)
	if failed {
		e.tally.FailWindows += uint64(folded)
	} else {
		e.tally.PassWindows += uint64(folded)
	}
	return folded
}

// Recover warm-starts the engine from an existing journal's labeled
// evidence records: a daemon resuming a journal folds what the pre-crash
// engine had folded, so its live ranking continues where the old one
// stopped — and a later offline Replay over the grown journal still
// matches the live engine byte for byte. Call it before serving traffic;
// recovered evidence is not re-journaled. It returns the number of
// evidence records folded.
//
// A PlaneDiagnose checkpoint record restores the engine absolutely —
// spectrum, fold marks and tally — superseding evidence replayed before it
// (the pre-checkpoint history of older streams); the records after it are
// exactly the delta the checkpoint does not cover. A checkpoint with a
// foreign block count is an error, mirroring the live engine's layout
// guard.
func (e *Engine) Recover(r *journal.Reader) (int, error) {
	n := 0
	for {
		m, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return n, fmt.Errorf("diagnose: recover: %w", err)
		}
		if m.Type == wire.TypeCheckpoint && m.Checkpoint != nil && m.Checkpoint.Plane == wire.PlaneDiagnose {
			cp := *m.Checkpoint
			errc := make(chan error, 1)
			if !e.put(item{kind: itemRestore, restore: &cp, errc: errc}, true) {
				return n, ErrClosed
			}
			if err := <-errc; err != nil {
				return n, err
			}
			continue
		}
		blocks := -1
		switch {
		case m.Type == wire.TypeSnapshot && m.Snapshot != nil:
			blocks = m.Snapshot.Blocks
		case m.Type == wire.TypeSpectrumDelta && m.Delta != nil:
			blocks = m.Delta.Blocks
		default:
			continue
		}
		if m.Target != LabelFail && m.Target != LabelPass {
			continue
		}
		if blocks != e.opts.Blocks {
			continue // a foreign layout cannot fold into this engine
		}
		if !e.put(item{kind: itemEvidence, msg: m}, true) {
			return n, ErrClosed
		}
		n++
	}
	e.Sync()
	return n, nil
}
