package diagnose

import (
	"fmt"
	"sort"
	"strings"

	"trader/internal/fmea"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// Evidence labels carried in the Target field of journaled snapshot frames:
// which side of the comparison a device's windows were folded into.
const (
	LabelFail = "fail"
	LabelPass = "pass"
)

// EvidenceFrame builds the journal record for one labeled snapshot: the
// TypeSnapshot frame as received, re-tagged with the handshaken device ID
// and the engine's pass/fail label. Journaled write-ahead of folding, these
// records are the complete input of the fleet ranking — Replay rebuilds a
// byte-identical Result from them alone.
func EvidenceFrame(id, label string, m wire.Message) wire.Message {
	return wire.Message{Type: wire.TypeSnapshot, SUO: id, Target: label, At: m.At, Snapshot: m.Snapshot}
}

// DeltaFrame builds the journal record for one labeled heartbeat spectrum
// delta, EvidenceFrame's continuous-mode sibling: the TypeSpectrumDelta
// frame as received, re-tagged with the handshaken device ID and the
// engine's pass/fail label. The label rides in Target exactly like a
// snapshot's, so Replay labels the delta without needing the live suspect
// set that produced it.
func DeltaFrame(id, label string, m wire.Message) wire.Message {
	return wire.Message{Type: wire.TypeSpectrumDelta, SUO: id, Target: label, At: m.At, Delta: m.Delta}
}

// folder folds labeled evidence into a Spectra under the shared acceptance
// rules: only closed windows (At != 0 — the open window is still growing
// and would double-count when a later pull re-captures it complete), each
// device's windows fold at most once (a per-device Seq high-water mark, so
// overlapping re-pulls of the same retained ring do not double-count
// execution evidence), and windows with no coverage are skipped (absence of
// evidence, not evidence of absence). Live folding, boot-time recovery and
// journal replay all fold through one folder each, in the same per-device
// order (the engine folds and journals on one goroutine; replay reads the
// journal in order), so they cannot diverge.
type folder struct {
	spectra *spectrum.Spectra
	next    map[string]uint64 // device → first not-yet-folded window Seq
	// parts are the per-verdict partitions of the multi-fault split (§5.6):
	// one accumulator per suspect device, created by its first fail-labeled
	// window. A suspect's fail windows fold only into its own partition;
	// pass windows (the fleet's exonerating evidence) fold into every
	// partition — so each partition ranks one failure against the shared
	// healthy baseline, and two devices failing in different components
	// yield two clean rankings instead of one smeared one. Creation is
	// record-driven (first fail label), so journal replay reconstructs the
	// same partitions in the same order.
	parts  map[string]*spectrum.Spectra
	trackK int // incremental top-K depth applied to every accumulator (0: off)
}

func newFolder(s *spectrum.Spectra, trackK int) *folder {
	if trackK > 0 {
		s.TrackTop(trackK)
	}
	return &folder{
		spectra: s,
		next:    make(map[string]uint64),
		parts:   make(map[string]*spectrum.Spectra),
		trackK:  trackK,
	}
}

// part returns the suspect's per-verdict partition, creating it on first
// use.
func (f *folder) part(device string) *spectrum.Spectra {
	p := f.parts[device]
	if p == nil {
		p = spectrum.NewSpectra(f.spectra.Blocks(), 1)
		if f.trackK > 0 {
			p.TrackTop(f.trackK)
		}
		f.parts[device] = p
	}
	return p
}

// foldWindow routes one accepted dense window into the merged accumulator
// and the per-verdict partitions.
func (f *folder) foldWindow(device string, words []uint64, failed bool) {
	f.spectra.FoldWords(words, failed)
	if failed {
		f.part(device).FoldWords(words, true)
		return
	}
	for _, p := range f.parts {
		p.FoldWords(words, false)
	}
}

// foldSparseWindow is foldWindow for a sparse (delta) window.
func (f *folder) foldSparseWindow(device string, index []uint32, words []uint64, failed bool) {
	f.spectra.FoldSparse(index, words, failed)
	if failed {
		f.part(device).FoldSparse(index, words, true)
		return
	}
	for _, p := range f.parts {
		p.FoldSparse(index, words, false)
	}
}

// fold accumulates one device's labeled snapshot, returning how many of its
// windows folded.
func (f *folder) fold(device string, snap *wire.Snapshot, failed bool) int {
	folded := 0
	next := f.next[device]
	for _, w := range snap.Windows {
		if w.At == 0 {
			continue // still-open window: not yet evidence
		}
		if w.Seq < next {
			continue // already folded by an earlier pull or delta of this device
		}
		next = w.Seq + 1
		covered := false
		for _, word := range w.Words {
			if word != 0 {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		f.foldWindow(device, w.Words, failed)
		folded++
	}
	f.next[device] = next
	return folded
}

// foldDelta accumulates one device's labeled heartbeat delta — a single
// closed window in sparse form — under the same high-water-mark scheme as
// fold: the delta's Seq shares the recorder's window numbering, so a window
// that already arrived (as an earlier delta or inside a pulled snapshot)
// never folds twice. It reports whether the window folded; an already-seen
// or empty window only advances the mark.
func (f *folder) foldDelta(device string, d *wire.SpectrumDelta, failed bool) bool {
	if d.Seq < f.next[device] {
		return false // this window already folded via a snapshot or delta
	}
	f.next[device] = d.Seq + 1
	covered := false
	for _, word := range d.Words {
		if word != 0 {
			covered = true
			break
		}
	}
	if !covered {
		return false
	}
	f.foldSparseWindow(device, d.Index, d.Words, failed)
	return true
}

// Layout is the fleet-shared block→feature mapping: the synthetic program's
// structure for a given block count (seed-independent), inverted for
// verdict aggregation. Block ranges that belong to no feature are the
// common core.
type Layout struct {
	blocks    int
	features  []string
	featureOf []int16 // index into features; -1 = common core
}

// NewLayout derives the layout for the given block count.
func NewLayout(blocks int) *Layout {
	prog := spectrum.GenerateTVProgram(0, blocks)
	l := &Layout{blocks: blocks, featureOf: make([]int16, blocks)}
	for i := range l.featureOf {
		l.featureOf[i] = -1
	}
	for fi, f := range prog.Features {
		l.features = append(l.features, f.Name)
		for _, b := range f.Blocks {
			l.featureOf[b] = int16(fi)
		}
	}
	return l
}

// FeatureOf names the component a block belongs to ("common" for the core).
func (l *Layout) FeatureOf(block int) string {
	if fi := l.featureOf[block]; fi >= 0 {
		return l.features[fi]
	}
	return "common"
}

// Result is one fleet diagnosis: the SBFL ranking over the folded evidence
// plus the FMEA-weighted component verdict. Its String form is the
// replay-invariant artifact — the same evidence always formats to the same
// bytes, live or replayed.
type Result struct {
	// Coeff is the similarity coefficient the ranking used.
	Coeff string
	// Blocks is the instrumented block count of the folded spectra.
	Blocks int
	// Transactions and Failures count the folded coverage windows.
	Transactions, Failures int
	// Ranking is the top of the suspiciousness ranking, most suspicious
	// first, annotated with each block's component.
	Ranking []RankedBlock
	// Verdict is the FMEA worksheet over components: runtime occurrence
	// from the spectra (each component's share of peak suspiciousness),
	// design-time severity and detectability per component class, sorted
	// by risk priority. The top entry is the component verdict.
	Verdict []fmea.Entry
	// Parts are the per-verdict partitions of a multi-fault diagnosis:
	// one sub-ranking per suspect device, over that device's failing
	// windows plus the fleet's shared pass evidence, sorted by suspect ID.
	// Two devices failing in different FMEA classes show up here as two
	// separate rankings with two separate verdicts, where the merged
	// ranking above smears both faults together.
	Parts []PartDiagnosis
}

// PartDiagnosis is one per-verdict partition: the suspect device whose
// failing evidence it isolates and the diagnosis over that partition.
type PartDiagnosis struct {
	Suspect string
	Result  *Result
}

// RankedBlock is one ranking entry with its component attribution.
type RankedBlock struct {
	Block     int
	Score     float64
	Component string
}

// buildResult derives the ranking and verdict from folded spectra. The
// verdict follows control.Criticality's pattern: runtime occurrence
// (here: normalized per-component peak suspiciousness) under design-time
// severity/detectability — the common core is severe but well understood
// (high detectability), feature modules are where interaction faults hide.
func buildResult(s *spectrum.Spectra, layout *Layout, coeff spectrum.Coefficient, topN int) *Result {
	r := &Result{
		Coeff:        coeff.Name,
		Blocks:       s.Blocks(),
		Transactions: s.Transactions(),
		Failures:     s.Failures(),
	}
	// A tracked accumulator answers from its incremental candidate set in
	// O(K log K); Top == TopN exactly (the differential invariant in
	// internal/spectrum), and the TopN order is total, so a shorter ranking
	// is its prefix. Otherwise pay the full scan.
	var ranked []spectrum.Ranked
	if k := s.TrackedK(); k > 0 && topN <= k {
		ranked = s.Top(coeff)
		if len(ranked) > topN {
			ranked = ranked[:topN]
		}
	} else {
		ranked = s.TopN(coeff, topN)
	}
	for _, rb := range ranked {
		r.Ranking = append(r.Ranking, RankedBlock{
			Block: rb.Block, Score: rb.Score, Component: layout.FeatureOf(rb.Block),
		})
	}
	if s.Transactions() == 0 {
		return r
	}
	// Per-component peak suspiciousness over every block.
	peak := make(map[string]float64)
	total := 0.0
	for b := 0; b < s.Blocks(); b++ {
		score := coeff.F(s.CountsFor(b))
		comp := layout.FeatureOf(b)
		if score > peak[comp] {
			peak[comp] = score
		}
	}
	for _, v := range peak {
		total += v
	}
	if total == 0 {
		return r
	}
	arch := fmea.NewArchitecture()
	add := func(name string, severity, detectability float64) {
		arch.AddComponent(fmea.Component{Name: name, UserFacing: true, Modes: []fmea.FailureMode{
			{Name: "suspect-code", Occurrence: peak[name] / total,
				LocalSeverity: severity, Detectability: detectability},
		}})
	}
	add("common", 0.9, 0.9)
	for _, f := range layout.features {
		add(f, 0.7, 0.6)
	}
	r.Verdict = arch.Analyze()
	return r
}

// buildFolderResult derives the full diagnosis from a folder: the merged
// ranking plus one per-verdict partition ranking per suspect, suspect-ID
// ordered. Live Result calls and journal Replay both come through here, so
// their Strings cannot diverge.
func buildFolderResult(f *folder, layout *Layout, coeff spectrum.Coefficient, topN int) *Result {
	r := buildResult(f.spectra, layout, coeff, topN)
	if len(f.parts) == 0 {
		return r
	}
	ids := make([]string, 0, len(f.parts))
	for id := range f.parts {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		r.Parts = append(r.Parts, PartDiagnosis{
			Suspect: id,
			Result:  buildResult(f.parts[id], layout, coeff, topN),
		})
	}
	return r
}

// String formats the result deterministically: the byte-identical artifact
// the replay invariant is stated over.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis[%s]: %d blocks, %d windows (%d failing)\n",
		r.Coeff, r.Blocks, r.Transactions, r.Failures)
	for i, e := range r.Ranking {
		fmt.Fprintf(&b, "  %2d. block %6d  score %.6f  (%s)\n", i+1, e.Block, e.Score, e.Component)
	}
	for i, v := range r.Verdict {
		if i >= 3 {
			break
		}
		fmt.Fprintf(&b, "verdict %d: %s (RPN %.6f, occurrence %.6f)\n", i+1, v.Component, v.RPN, v.Occurrence)
	}
	for _, p := range r.Parts {
		fmt.Fprintf(&b, "partition %s:\n%s", p.Suspect, p.Result)
	}
	return b.String()
}
