package diagnose

import (
	"fmt"
	"strings"

	"trader/internal/fmea"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// Evidence labels carried in the Target field of journaled snapshot frames:
// which side of the comparison a device's windows were folded into.
const (
	LabelFail = "fail"
	LabelPass = "pass"
)

// EvidenceFrame builds the journal record for one labeled snapshot: the
// TypeSnapshot frame as received, re-tagged with the handshaken device ID
// and the engine's pass/fail label. Journaled write-ahead of folding, these
// records are the complete input of the fleet ranking — Replay rebuilds a
// byte-identical Result from them alone.
func EvidenceFrame(id, label string, m wire.Message) wire.Message {
	return wire.Message{Type: wire.TypeSnapshot, SUO: id, Target: label, At: m.At, Snapshot: m.Snapshot}
}

// folder folds labeled evidence into a Spectra under the shared acceptance
// rules: only closed windows (At != 0 — the open window is still growing
// and would double-count when a later pull re-captures it complete), each
// device's windows fold at most once (a per-device Seq high-water mark, so
// overlapping re-pulls of the same retained ring do not double-count
// execution evidence), and windows with no coverage are skipped (absence of
// evidence, not evidence of absence). Live folding, boot-time recovery and
// journal replay all fold through one folder each, in the same per-device
// order (the engine folds and journals on one goroutine; replay reads the
// journal in order), so they cannot diverge.
type folder struct {
	spectra *spectrum.Spectra
	next    map[string]uint64 // device → first not-yet-folded window Seq
}

func newFolder(s *spectrum.Spectra) *folder {
	return &folder{spectra: s, next: make(map[string]uint64)}
}

// fold accumulates one device's labeled snapshot, returning how many of its
// windows folded.
func (f *folder) fold(device string, snap *wire.Snapshot, failed bool) int {
	folded := 0
	next := f.next[device]
	for _, w := range snap.Windows {
		if w.At == 0 {
			continue // still-open window: not yet evidence
		}
		if w.Seq < next {
			continue // already folded by an earlier pull of this device
		}
		next = w.Seq + 1
		covered := false
		for _, word := range w.Words {
			if word != 0 {
				covered = true
				break
			}
		}
		if !covered {
			continue
		}
		f.spectra.FoldWords(w.Words, failed)
		folded++
	}
	f.next[device] = next
	return folded
}

// Layout is the fleet-shared block→feature mapping: the synthetic program's
// structure for a given block count (seed-independent), inverted for
// verdict aggregation. Block ranges that belong to no feature are the
// common core.
type Layout struct {
	blocks    int
	features  []string
	featureOf []int16 // index into features; -1 = common core
}

// NewLayout derives the layout for the given block count.
func NewLayout(blocks int) *Layout {
	prog := spectrum.GenerateTVProgram(0, blocks)
	l := &Layout{blocks: blocks, featureOf: make([]int16, blocks)}
	for i := range l.featureOf {
		l.featureOf[i] = -1
	}
	for fi, f := range prog.Features {
		l.features = append(l.features, f.Name)
		for _, b := range f.Blocks {
			l.featureOf[b] = int16(fi)
		}
	}
	return l
}

// FeatureOf names the component a block belongs to ("common" for the core).
func (l *Layout) FeatureOf(block int) string {
	if fi := l.featureOf[block]; fi >= 0 {
		return l.features[fi]
	}
	return "common"
}

// Result is one fleet diagnosis: the SBFL ranking over the folded evidence
// plus the FMEA-weighted component verdict. Its String form is the
// replay-invariant artifact — the same evidence always formats to the same
// bytes, live or replayed.
type Result struct {
	// Coeff is the similarity coefficient the ranking used.
	Coeff string
	// Blocks is the instrumented block count of the folded spectra.
	Blocks int
	// Transactions and Failures count the folded coverage windows.
	Transactions, Failures int
	// Ranking is the top of the suspiciousness ranking, most suspicious
	// first, annotated with each block's component.
	Ranking []RankedBlock
	// Verdict is the FMEA worksheet over components: runtime occurrence
	// from the spectra (each component's share of peak suspiciousness),
	// design-time severity and detectability per component class, sorted
	// by risk priority. The top entry is the component verdict.
	Verdict []fmea.Entry
}

// RankedBlock is one ranking entry with its component attribution.
type RankedBlock struct {
	Block     int
	Score     float64
	Component string
}

// buildResult derives the ranking and verdict from folded spectra. The
// verdict follows control.Criticality's pattern: runtime occurrence
// (here: normalized per-component peak suspiciousness) under design-time
// severity/detectability — the common core is severe but well understood
// (high detectability), feature modules are where interaction faults hide.
func buildResult(s *spectrum.Spectra, layout *Layout, coeff spectrum.Coefficient, topN int) *Result {
	r := &Result{
		Coeff:        coeff.Name,
		Blocks:       s.Blocks(),
		Transactions: s.Transactions(),
		Failures:     s.Failures(),
	}
	for _, rb := range s.TopN(coeff, topN) {
		r.Ranking = append(r.Ranking, RankedBlock{
			Block: rb.Block, Score: rb.Score, Component: layout.FeatureOf(rb.Block),
		})
	}
	if s.Transactions() == 0 {
		return r
	}
	// Per-component peak suspiciousness over every block.
	peak := make(map[string]float64)
	total := 0.0
	for b := 0; b < s.Blocks(); b++ {
		score := coeff.F(s.CountsFor(b))
		comp := layout.FeatureOf(b)
		if score > peak[comp] {
			peak[comp] = score
		}
	}
	for _, v := range peak {
		total += v
	}
	if total == 0 {
		return r
	}
	arch := fmea.NewArchitecture()
	add := func(name string, severity, detectability float64) {
		arch.AddComponent(fmea.Component{Name: name, UserFacing: true, Modes: []fmea.FailureMode{
			{Name: "suspect-code", Occurrence: peak[name] / total,
				LocalSeverity: severity, Detectability: detectability},
		}})
	}
	add("common", 0.9, 0.9)
	for _, f := range layout.features {
		add(f, 0.7, 0.6)
	}
	r.Verdict = arch.Analyze()
	return r
}

// String formats the result deterministically: the byte-identical artifact
// the replay invariant is stated over.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "diagnosis[%s]: %d blocks, %d windows (%d failing)\n",
		r.Coeff, r.Blocks, r.Transactions, r.Failures)
	for i, e := range r.Ranking {
		fmt.Fprintf(&b, "  %2d. block %6d  score %.6f  (%s)\n", i+1, e.Block, e.Score, e.Component)
	}
	for i, v := range r.Verdict {
		if i >= 3 {
			break
		}
		fmt.Fprintf(&b, "verdict %d: %s (RPN %.6f, occurrence %.6f)\n", i+1, v.Component, v.RPN, v.Occurrence)
	}
	return b.String()
}
