package diagnose

import (
	"strings"
	"testing"

	"trader/internal/control"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// deltaMsg wraps a recorder's rotated delta as the wire frame the fleet
// server would hand to the engine.
func deltaMsg(id string, at sim.Time, d *wire.SpectrumDelta) wire.Message {
	return wire.Message{Type: wire.TypeSpectrumDelta, SUO: id, At: at, Delta: d}
}

// With the requery gap disabled (Requery < 0) an unanswered pull must be
// written off by the very next escalation, not parked for the default
// window: before the fix the expiry path fell back to DefaultRequery, so a
// device that vanished mid-pull stayed pinned as in-flight — and coalesced
// every later escalation of its cohort peers — for two virtual seconds the
// caller had explicitly turned off.
func TestRequeryDisabledExpiresImmediately(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	for _, id := range []string{"a", "b"} {
		if err := pool.AddDevice(id, 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	eng := Attach(pool, Options{Blocks: testBlocks, Requery: -1})
	defer eng.Close()

	// Episode 1 pulls the suspect "a" and its only healthy peer "b";
	// neither ever answers.
	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: sim.Second})
	eng.Sync()
	if ro := eng.Rollup(); ro.Episodes != 1 || ro.Pending != 2 {
		t.Fatalf("first episode: %s", ro)
	}
	// One virtual second later "b" escalates. With the gap disabled both
	// stale pulls are expired on the spot and a fresh episode opens —
	// DefaultRequery (2 s) must play no part.
	eng.HandleAction(control.Action{Device: "b", Rung: control.RungReset, At: 2 * sim.Second})
	eng.Sync()
	ro := eng.Rollup()
	if ro.Expired != 2 {
		t.Fatalf("expired %d pulls, want 2 (stale pulls pinned past the disabled gap): %s", ro.Expired, ro)
	}
	if ro.Episodes != 2 || ro.Coalesced != 0 {
		t.Fatalf("second escalation did not open an episode: %s", ro)
	}
}

// Continuous mode end to end, offline: deltas fold as they arrive, labeled
// by the live suspect set; the fold high-water mark dedups a later snapshot
// pull re-serving the same windows; empty and malformed deltas are counted,
// not folded; every accepted delta is journaled labeled.
func TestEngineContinuousDeltas(t *testing.T) {
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	if err := pool.AddDevice("a", 1, fleet.LightFactory(0)); err != nil {
		t.Fatal(err)
	}
	js := &sink{}
	eng := Attach(pool, Options{Blocks: testBlocks, Continuous: true, Journal: js})
	defer eng.Close()

	r := testRecorder(0)
	r.Press("volume")
	d0 := r.RotateDelta(100 * sim.Millisecond)
	if d0.Seq != 0 || d0.Blocks != testBlocks || len(d0.Index) == 0 {
		t.Fatalf("delta 0 = %+v", d0)
	}
	eng.HandleSpectrumDelta("a", deltaMsg("a", 100*sim.Millisecond, d0))
	eng.Sync()
	if ro := eng.Rollup(); ro.Deltas != 1 || ro.PassWindows != 1 || ro.FailWindows != 0 {
		t.Fatalf("healthy delta: %s", ro)
	}

	// The device escalates: from here on its deltas carry the fail label
	// and open its verdict partition.
	eng.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: 200 * sim.Millisecond})
	r.Press("teletext")
	d1 := r.RotateDelta(200 * sim.Millisecond)
	eng.HandleSpectrumDelta("a", deltaMsg("a", 200*sim.Millisecond, d1))
	eng.Sync()
	if ro := eng.Rollup(); ro.FailWindows != 1 || ro.PassWindows != 1 {
		t.Fatalf("suspect delta: %s", ro)
	}

	// The episode's pull answers with the full ring: both closed windows
	// were already delta-folded, so the snapshot folds nothing — the HWM
	// scheme keeps deltas and snapshots from double-counting.
	eng.HandleSnapshot("a", wire.Message{Type: wire.TypeSnapshot, SUO: "a",
		At: 250 * sim.Millisecond, Snapshot: r.Snapshot()})
	eng.Sync()
	ro := eng.Rollup()
	if ro.Snapshots != 1 || ro.FailWindows != 1 || ro.PassWindows != 1 {
		t.Fatalf("re-pull double-folded: %s", ro)
	}
	if ro.SkippedWindows != 3 { // two deduped closed windows + the open one
		t.Fatalf("skipped %d windows, want 3: %s", ro.SkippedWindows, ro)
	}
	if ro.Transactions != 2 {
		t.Fatalf("transactions = %d, want 2", ro.Transactions)
	}

	// A quiet window advances the mark without folding; a foreign-layout
	// delta is malformed.
	d2 := r.RotateDelta(300 * sim.Millisecond)
	if len(d2.Index) != 0 {
		t.Fatalf("quiet delta has coverage: %+v", d2)
	}
	eng.HandleSpectrumDelta("a", deltaMsg("a", 300*sim.Millisecond, d2))
	eng.HandleSpectrumDelta("a", deltaMsg("a", 300*sim.Millisecond, &wire.SpectrumDelta{Seq: 9, Blocks: 64}))
	eng.Sync()
	ro = eng.Rollup()
	if ro.Deltas != 3 || ro.SkippedWindows != 4 || ro.Malformed != 1 || ro.Transactions != 2 {
		t.Fatalf("quiet+malformed deltas: %s", ro)
	}

	res := eng.Result(3)
	if len(res.Parts) != 1 || res.Parts[0].Suspect != "a" {
		t.Fatalf("partitions = %+v, want one for device a", res.Parts)
	}
	if res.Parts[0].Result.Failures != 1 {
		t.Fatalf("partition failures = %d, want 1", res.Parts[0].Result.Failures)
	}

	// Journal: two good deltas labeled pass/fail, one quiet delta (still
	// journaled — it advances the replayed HWM) and the snapshot record.
	js.mu.Lock()
	defer js.mu.Unlock()
	var labels []string
	for _, f := range js.frames {
		if f.Type == wire.TypeSpectrumDelta {
			labels = append(labels, f.Target)
		}
	}
	if len(labels) != 3 || labels[0] != LabelPass || labels[1] != LabelFail || labels[2] != LabelFail {
		t.Fatalf("journaled delta labels = %v", labels)
	}
}

// Two devices failing simultaneously with faults in different components
// must yield two clean per-verdict rankings — each naming its own fault
// block first — where the merged ranking smears both; and a journal replay
// reconstructs the whole thing, partitions included, byte for byte.
func TestEngineMultiFaultPartitions(t *testing.T) {
	const devices = 6
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	ids := make([]string, devices)
	recorders := make([]*Recorder, devices)
	for i := range ids {
		ids[i] = fleet.DeviceID(i)
		if err := pool.AddDevice(ids[i], 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
		recorders[i] = testRecorder(i)
	}
	faultTxt := recorders[0].InjectFault("teletext")
	faultVol := recorders[1].InjectFault("volume")
	if faultTxt == faultVol {
		t.Fatalf("faults collide at block %d", faultTxt)
	}

	eng := Attach(pool, Options{Blocks: testBlocks, Continuous: true, Journal: jw})
	round := func(at sim.Time) {
		// Suspects first, then the healthy fleet, so every partition sees
		// the round's exonerating pass evidence.
		for i, r := range recorders {
			r.Press("teletext")
			r.Press("volume")
			r.Press("zapping")
			eng.HandleSpectrumDelta(ids[i], deltaMsg(ids[i], at, r.RotateDelta(at)))
		}
		eng.Sync()
	}
	round(1 * sim.Second) // everyone healthy: all pass
	eng.HandleAction(control.Action{Device: ids[0], Rung: control.RungReset, At: 1500 * sim.Millisecond})
	eng.HandleAction(control.Action{Device: ids[1], Rung: control.RungReset, At: 1600 * sim.Millisecond})
	for w := 0; w < 4; w++ {
		round(sim.Time(w+2) * sim.Second)
	}

	live := eng.Result(5)
	liveRo := eng.Rollup()
	eng.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	if liveRo.Deltas != 5*devices || liveRo.FailWindows != 2*4 {
		t.Fatalf("rollup: %s", liveRo)
	}

	if len(live.Parts) != 2 {
		t.Fatalf("got %d partitions, want 2:\n%s", len(live.Parts), live)
	}
	if live.Parts[0].Suspect != ids[0] || live.Parts[1].Suspect != ids[1] {
		t.Fatalf("partition suspects = %s, %s", live.Parts[0].Suspect, live.Parts[1].Suspect)
	}
	p0, p1 := live.Parts[0].Result, live.Parts[1].Result
	if p0.Ranking[0].Block != faultTxt || p0.Ranking[0].Component != "teletext" {
		t.Fatalf("partition %s top = block %d (%s), want teletext fault %d\n%s",
			ids[0], p0.Ranking[0].Block, p0.Ranking[0].Component, faultTxt, live)
	}
	if p1.Ranking[0].Block != faultVol || p1.Ranking[0].Component != "volume" {
		t.Fatalf("partition %s top = block %d (%s), want volume fault %d\n%s",
			ids[1], p1.Ranking[0].Block, p1.Ranking[0].Component, faultVol, live)
	}
	if len(p0.Verdict) == 0 || p0.Verdict[0].Component != "teletext" ||
		len(p1.Verdict) == 0 || p1.Verdict[0].Component != "volume" {
		t.Fatalf("partition verdicts do not separate the faults:\n%s", live)
	}

	// Offline replay: same Result, partitions and all, byte for byte.
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()
	replayed, st, err := Replay(jr, spectrum.Ochiai, 5)
	if err != nil {
		t.Fatal(err)
	}
	if st.Deltas != 5*devices {
		t.Fatalf("replayed %d deltas, want %d", st.Deltas, 5*devices)
	}
	if replayed.String() != live.String() {
		t.Fatalf("replay diverged:\nlive:\n%s\nreplayed:\n%s", live, replayed)
	}
	if !strings.Contains(replayed.String(), "partition "+ids[0]) {
		t.Fatalf("replayed result lacks partitions:\n%s", replayed)
	}
}

// A diagnosis checkpoint captured mid-continuous-run restores the whole
// plane — merged spectrum, partitions, fold marks AND the suspect set, so
// the resumed engine keeps labeling a suspect's deltas as fail.
func TestCheckpointCarriesPartitionsAndSuspects(t *testing.T) {
	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 1})
	defer pool.Stop()
	for _, id := range []string{"a", "b"} {
		if err := pool.AddDevice(id, 1, fleet.LightFactory(0)); err != nil {
			t.Fatal(err)
		}
	}
	live := Attach(pool, Options{Blocks: testBlocks, Continuous: true})
	ra, rb := testRecorder(0), testRecorder(1)
	ra.InjectFault("menu")
	live.HandleAction(control.Action{Device: "a", Rung: control.RungReset, At: sim.Second})
	for w := 0; w < 2; w++ {
		at := sim.Time(w+1) * sim.Second
		ra.Press("menu")
		rb.Press("menu")
		live.HandleSpectrumDelta("a", deltaMsg("a", at, ra.RotateDelta(at)))
		live.HandleSpectrumDelta("b", deltaMsg("b", at, rb.RotateDelta(at)))
	}
	live.Sync()
	cpMsg := live.Checkpoint()
	cp := cpMsg.Checkpoint
	if cp == nil || len(cp.Parts) != 1 || cp.Parts[0].ID != "a" {
		t.Fatalf("checkpoint parts = %+v", cp)
	}
	suspectFlagged := false
	for _, d := range cp.Devices {
		if d.ID == "a" && len(d.Stats) == 2 && d.Stats[1]&1 != 0 {
			suspectFlagged = true
		}
		if d.ID == "b" && len(d.Stats) != 1 {
			t.Fatalf("healthy device stats = %v", d.Stats)
		}
	}
	if !suspectFlagged {
		t.Fatalf("suspect flag missing from checkpoint devices: %+v", cp.Devices)
	}
	if err := jw.Append(cpMsg); err != nil {
		t.Fatal(err)
	}
	want := live.Result(5)
	live.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	second := Attach(pool, Options{Blocks: testBlocks, Continuous: true})
	defer second.Close()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := second.Recover(jr); err != nil {
		jr.Close()
		t.Fatal(err)
	}
	jr.Close()
	if got := second.Result(5).String(); got != want.String() {
		t.Fatalf("restored plane diverged:\nlive:\n%s\nrestored:\n%s", want, got)
	}
	// The restored suspect set labels the device's next delta fail — and
	// the restored fold marks refuse a replayed window.
	ra.Press("menu")
	stale := &wire.SpectrumDelta{Seq: 0, Blocks: testBlocks, Index: []uint32{0}, Words: []uint64{1}}
	second.HandleSpectrumDelta("a", deltaMsg("a", 3*sim.Second, stale))
	second.HandleSpectrumDelta("a", deltaMsg("a", 3*sim.Second, ra.RotateDelta(3*sim.Second)))
	second.Sync()
	ro := second.Rollup()
	if ro.FailWindows != 3 { // 2 checkpointed + 1 fresh; the stale Seq-0 replay deduped
		t.Fatalf("restored labeling: %d fail windows, want 3: %s", ro.FailWindows, ro)
	}
}
