package diagnose

import (
	"fmt"
	"sort"

	"trader/internal/spectrum"
	"trader/internal/wire"
)

// Checkpoint capture/restore for the diagnosis plane: the fleet spectrum's
// per-block counters, the per-device fold high-water marks (so re-seen
// evidence still folds exactly once) and the engine tally, flattened into
// one PlaneDiagnose record riding in shard 0's checkpoint batch. Like the
// control plane's, capture goes through the engine's own loop rather than
// under the journal locks — this loop appends evidence to that journal — so
// a snapshot accepted between the plane capture and the fleet freeze folds
// twice as far as the tally is concerned but never into the spectrum (the
// high-water marks gate it); the next checkpoint squares the books.

// diagCounters fixes the Counters layout of a PlaneDiagnose record.
var diagCounters = [...]string{
	"Escalations", "Episodes", "Coalesced",
	"Requests", "RequestFailures",
	"Snapshots", "Deltas", "FailWindows", "PassWindows", "SkippedWindows",
	"Unsolicited", "Malformed", "Expired", "JournalErrors", "Dropped",
}

// Checkpoint snapshots the engine into a PlaneDiagnose checkpoint record.
// It is a barrier like Result; on a closed engine it reads the frozen
// state directly.
func (e *Engine) Checkpoint() wire.Message {
	reply := make(chan wire.Message, 1)
	if e.put(item{kind: itemCheckpoint, cpReply: reply}, true) {
		return <-reply
	}
	<-e.done
	return e.checkpoint()
}

// checkpoint builds the record. Engine-goroutine only (or post-Close).
func (e *Engine) checkpoint() wire.Message {
	cp := &wire.Checkpoint{Plane: wire.PlaneDiagnose, Blocks: e.opts.Blocks}
	cells, nFail, nPass := e.spectra.Export()
	cp.NFail, cp.NPass = nFail, nPass
	for _, c := range cells {
		cp.Cells = append(cp.Cells, wire.CheckpointCell{Block: c.Block, Fail: c.Fail, Pass: c.Pass})
	}
	val := func(name string) uint64 {
		switch name {
		case "Escalations":
			return e.tally.Escalations
		case "Episodes":
			return e.tally.Episodes
		case "Coalesced":
			return e.tally.Coalesced
		case "Requests":
			return e.tally.Requests
		case "RequestFailures":
			return e.tally.RequestFailures
		case "Snapshots":
			return e.tally.Snapshots
		case "Deltas":
			return e.tally.Deltas
		case "FailWindows":
			return e.tally.FailWindows
		case "PassWindows":
			return e.tally.PassWindows
		case "SkippedWindows":
			return e.tally.SkippedWindows
		case "Unsolicited":
			return e.tally.Unsolicited
		case "Malformed":
			return e.tally.Malformed
		case "Expired":
			return e.tally.Expired
		case "JournalErrors":
			return e.tally.JournalErrors
		case "Dropped":
			return e.dropped.Load()
		}
		return 0
	}
	for _, name := range diagCounters {
		cp.Counters = append(cp.Counters, wire.CheckpointCounter{Name: name, V: val(name)})
	}
	// Per-device stats: the fold high-water mark, plus a flags word (bit 0:
	// the device is in the continuous-mode suspect set). The union with the
	// suspect set matters: a device escalated before any of its evidence
	// folded has a flag to persist but no mark yet.
	union := make(map[string]bool, len(e.fold.next)+len(e.suspects))
	for id := range e.fold.next {
		union[id] = true
	}
	for id := range e.suspects {
		union[id] = true
	}
	ids := make([]string, 0, len(union))
	for id := range union {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		stats := []uint64{e.fold.next[id]}
		if e.suspects[id] {
			stats = append(stats, 1)
		}
		cp.Devices = append(cp.Devices, wire.CheckpointDevice{ID: id, Stats: stats})
	}
	// Per-verdict partitions (continuous multi-fault split), each exported
	// sparsely like the merged spectrum above.
	pids := make([]string, 0, len(e.fold.parts))
	for id := range e.fold.parts {
		pids = append(pids, id)
	}
	sort.Strings(pids)
	for _, id := range pids {
		cells, nFail, nPass := e.fold.parts[id].Export()
		part := wire.CheckpointPart{ID: id, NFail: nFail, NPass: nPass}
		for _, c := range cells {
			part.Cells = append(part.Cells, wire.CheckpointCell{Block: c.Block, Fail: c.Fail, Pass: c.Pass})
		}
		cp.Parts = append(cp.Parts, part)
	}
	return wire.Message{Type: wire.TypeCheckpoint, Checkpoint: cp}
}

// restoreCheckpoint plays a PlaneDiagnose record back: spectrum cells, fold
// high-water marks and tally are assigned absolutely, so evidence replayed
// before the record (older streams) is simply superseded and restoring a
// newer record wins. Engine-goroutine only.
func (e *Engine) restoreCheckpoint(cp *wire.Checkpoint) error {
	if cp.Blocks != e.opts.Blocks {
		return fmt.Errorf("diagnose: checkpoint layout has %d blocks, engine %d", cp.Blocks, e.opts.Blocks)
	}
	cells := make([]spectrum.Cell, len(cp.Cells))
	for i, c := range cp.Cells {
		cells[i] = spectrum.Cell{Block: c.Block, Fail: c.Fail, Pass: c.Pass}
	}
	if err := e.spectra.Import(cells, cp.NFail, cp.NPass); err != nil {
		return err
	}
	e.fold.next = make(map[string]uint64, len(cp.Devices))
	e.suspects = make(map[string]bool)
	for _, d := range cp.Devices {
		// Stats: [fold high-water mark] or [mark, flags] (bit 0: suspect;
		// single-element records predate the continuous plane).
		if len(d.Stats) < 1 || len(d.Stats) > 2 {
			return fmt.Errorf("diagnose: device %q checkpoint has %d stats, want 1 or 2", d.ID, len(d.Stats))
		}
		e.fold.next[d.ID] = d.Stats[0]
		if len(d.Stats) == 2 && d.Stats[1]&1 != 0 {
			e.suspects[d.ID] = true
		}
	}
	// Partitions are restored absolutely too: drop whatever partial split
	// replayed before the record and import the checkpointed one.
	e.fold.parts = make(map[string]*spectrum.Spectra, len(cp.Parts))
	for _, p := range cp.Parts {
		pcells := make([]spectrum.Cell, len(p.Cells))
		for i, c := range p.Cells {
			pcells[i] = spectrum.Cell{Block: c.Block, Fail: c.Fail, Pass: c.Pass}
		}
		part := e.fold.part(p.ID)
		if err := part.Import(pcells, p.NFail, p.NPass); err != nil {
			return fmt.Errorf("diagnose: partition %q: %w", p.ID, err)
		}
	}
	for _, ct := range cp.Counters {
		switch ct.Name {
		case "Escalations":
			e.tally.Escalations = ct.V
		case "Episodes":
			e.tally.Episodes = ct.V
		case "Coalesced":
			e.tally.Coalesced = ct.V
		case "Requests":
			e.tally.Requests = ct.V
		case "RequestFailures":
			e.tally.RequestFailures = ct.V
		case "Snapshots":
			e.tally.Snapshots = ct.V
		case "Deltas":
			e.tally.Deltas = ct.V
		case "FailWindows":
			e.tally.FailWindows = ct.V
		case "PassWindows":
			e.tally.PassWindows = ct.V
		case "SkippedWindows":
			e.tally.SkippedWindows = ct.V
		case "Unsolicited":
			e.tally.Unsolicited = ct.V
		case "Malformed":
			e.tally.Malformed = ct.V
		case "Expired":
			e.tally.Expired = ct.V
		case "JournalErrors":
			e.tally.JournalErrors = ct.V
		case "Dropped":
			e.dropped.Store(ct.V)
		default:
			return fmt.Errorf("diagnose: unknown checkpoint counter %q", ct.Name)
		}
	}
	return nil
}
