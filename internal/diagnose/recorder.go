package diagnose

import (
	"sync"

	"trader/internal/event"
	"trader/internal/hwmon"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// Defaults for the diagnosis plane. Blocks is the paper's program scale
// (Sect. 4.4 instruments 60 000 C blocks); every recorder and the fleet
// engine must agree on it, since spectra are compared block-by-block across
// devices.
const (
	DefaultBlocks   = 60000
	DefaultWindows  = 8
	DefaultEvents   = 256
	DefaultCohort   = 8
	DefaultRequery  = 2 * sim.Second
	DefaultTrackTop = 10
)

// RecorderOptions sizes a device-side Recorder.
type RecorderOptions struct {
	// Blocks is the instrumented block count (default DefaultBlocks). The
	// program *layout* — which block belongs to which feature — is a pure
	// function of this count, so every device in a fleet shares it and
	// fleet-level folding compares like with like.
	Blocks int
	// Windows is how many closed coverage windows the spectral ring
	// retains (default DefaultWindows).
	Windows int
	// Events is the raw-event flight recorder capacity (default
	// DefaultEvents).
	Events int
	// Seed drives the per-device execution sampling (warm/cold paths,
	// background noise). It deliberately does not change the layout.
	Seed int64
}

func (o *RecorderOptions) fill() {
	if o.Blocks <= 0 {
		o.Blocks = DefaultBlocks
	}
	if o.Windows <= 0 {
		o.Windows = DefaultWindows
	}
	if o.Events <= 0 {
		o.Events = DefaultEvents
	}
}

// Recorder is the device-side half of the diagnosis plane: a spectral
// flight recorder. It maps the device's observable activity (remote-key
// presses, periodic component work) onto the synthetic instrumented program
// of internal/spectrum, accumulating one block-coverage bitset per
// heartbeat window, and retains the last few closed windows in a ring — the
// coverage analogue of the hwmon event flight recorder it also carries.
// Snapshot captures the retained windows as a wire.Snapshot for the
// monitor's diagnosis pull.
//
// A Recorder is safe for concurrent use: device buses publish from
// simulation goroutines while the connection's reader answers snapshot
// requests.
type Recorder struct {
	mu     sync.Mutex
	prog   *spectrum.Program
	events *hwmon.FlightRecorder

	fault   int    // block the device's defect executes (-1: healthy)
	faultIn string // feature the defect lives in

	cur     *spectrum.BitSet
	curSeq  uint64
	pressed map[string]bool // features already counted this window (periodic work)
	ring    []wire.SpectrumWindow
	retain  int
}

// NewRecorder builds a recorder over the shared program layout.
func NewRecorder(o RecorderOptions) *Recorder {
	o.fill()
	return &Recorder{
		prog:    spectrum.GenerateTVProgram(o.Seed, o.Blocks),
		events:  hwmon.NewFlightRecorder(o.Events),
		fault:   -1,
		cur:     spectrum.NewBitSet(o.Blocks),
		pressed: make(map[string]bool),
		retain:  o.Windows,
	}
}

// Blocks returns the instrumented block count.
func (r *Recorder) Blocks() int { return r.cur.Len() }

// InjectFault marks this device's build of the named feature as defective:
// every invocation of the feature from now on also executes the fault block
// (spectrum.Program.FaultInFeature — a rarely-taken path healthy devices
// sample only by chance). It returns the block index, the ground truth a
// fault-injection experiment checks the fleet ranking against.
func (r *Recorder) InjectFault(feature string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.fault = r.prog.FaultInFeature(feature)
	r.faultIn = feature
	return r.fault
}

// Fault returns the injected fault block, or -1 for a healthy device.
func (r *Recorder) Fault() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.fault
}

// Press records one invocation of the named feature into the open window:
// the feature's core path, sampled warm/cold paths, background noise — and
// the fault block, if this device's build of the feature is defective.
func (r *Recorder) Press(feature string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.press(feature)
}

func (r *Recorder) press(feature string) {
	r.cur.Or(r.prog.Press(feature))
	if r.fault >= 0 && feature == r.faultIn {
		r.cur.Set(r.fault)
	}
}

// Observe feeds one device event through the recorder: everything lands in
// the event flight recorder; key presses invoke the key's feature; a
// component's periodic output (video frames, teletext pages, ...) invokes
// its feature once per window — coverage is a set, so steady periodic work
// adds exactly its code paths.
func (r *Recorder) Observe(e event.Event) {
	r.events.Record(e)
	r.mu.Lock()
	defer r.mu.Unlock()
	if e.Name == "key" {
		if v, ok := e.Get("key"); ok {
			if f, ok := FeatureOfKey(tvsim.Key(int(v))); ok {
				r.press(f)
			}
		}
		return
	}
	if f, ok := FeatureOfComponent(e.Source); ok && !r.pressed[f] {
		r.pressed[f] = true
		r.press(f)
	}
}

// Rotate closes the open window at the device's virtual time at — the
// heartbeat boundary — pushing it into the ring and starting a fresh one.
func (r *Recorder) Rotate(at sim.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rotate(at)
}

func (r *Recorder) rotate(at sim.Time) {
	r.ring = append(r.ring, wire.SpectrumWindow{Seq: r.curSeq, At: at, Words: r.cur.Words()})
	if len(r.ring) > r.retain {
		r.ring = r.ring[len(r.ring)-r.retain:]
	}
	r.curSeq++
	r.cur.Clear()
	r.pressed = make(map[string]bool)
}

// RotateDelta closes the open window like Rotate and returns it as a sparse
// spectrum delta for piggybacking on the heartbeat (continuous diagnosis,
// TypeSpectrumDelta): only the nonzero coverage words, tagged with the
// window's sequence number. The Seq shares the ring's numbering, so the
// engine's per-device fold high-water mark deduplicates a delta against a
// later pulled snapshot re-capturing the same window — each window folds at
// most once however it travels. The frame is bounded: at most
// ceil(blocks/64) pairs of ~11 bytes (≈10 KB at the paper's 60 000-block
// scale), and in practice a window covers a small fraction of the program.
// A quiet window yields a delta with no pairs.
func (r *Recorder) RotateDelta(at sim.Time) *wire.SpectrumDelta {
	r.mu.Lock()
	defer r.mu.Unlock()
	d := &wire.SpectrumDelta{Seq: r.curSeq, Blocks: r.cur.Len()}
	d.Index, d.Words = r.cur.Sparse()
	r.rotate(at)
	return d
}

// Snapshot captures the retained closed windows plus the still-open one
// (At = 0) — the device's answer to a TypeSnapshotReq pull.
func (r *Recorder) Snapshot() *wire.Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &wire.Snapshot{
		Blocks:  r.cur.Len(),
		Events:  uint64(r.events.Len()),
		Dropped: r.events.Dropped(),
	}
	for _, w := range r.ring {
		words := make([]uint64, len(w.Words))
		copy(words, w.Words)
		s.Windows = append(s.Windows, wire.SpectrumWindow{Seq: w.Seq, At: w.At, Words: words})
	}
	s.Windows = append(s.Windows, wire.SpectrumWindow{Seq: r.curSeq, Words: r.cur.Words()})
	return s
}

// keyFeature maps remote keys onto the features of the synthetic program
// layout (spectrum.DefaultTVFeatures).
var keyFeature = map[tvsim.Key]string{
	tvsim.KeyPower:       "power",
	tvsim.KeyVolUp:       "volume",
	tvsim.KeyVolDown:     "volume",
	tvsim.KeyMute:        "mute",
	tvsim.KeyChUp:        "zapping",
	tvsim.KeyChDown:      "zapping",
	tvsim.KeyText:        "teletext",
	tvsim.KeyMenu:        "menu",
	tvsim.KeyDual:        "dual-screen",
	tvsim.KeySleep:       "sleep",
	tvsim.KeyLock:        "child-lock",
	tvsim.KeySwivelLeft:  "swivel",
	tvsim.KeySwivelRight: "swivel",
	tvsim.KeyOK:          "menu",
	tvsim.KeyBack:        "menu",
	tvsim.KeySource:      "settings",
}

// componentFeature maps event sources (and fault-injection targets) onto
// program features: the code a component's periodic work executes.
var componentFeature = map[string]string{
	"audio":    "volume",
	"video":    "zapping",
	"osd":      "menu",
	"swivel":   "swivel",
	"tv":       "power",
	"txt-disp": "teletext",
	"teletext": "teletext",
	"tuner":    "zapping",
}

// FeatureOfKey maps a remote key to the program feature it exercises.
func FeatureOfKey(k tvsim.Key) (string, bool) {
	f, ok := keyFeature[k]
	return f, ok
}

// FeatureOfComponent maps a component/event source (or a fault-injection
// target) to the program feature its code belongs to.
func FeatureOfComponent(source string) (string, bool) {
	f, ok := componentFeature[source]
	return f, ok
}
