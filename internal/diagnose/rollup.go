package diagnose

import "fmt"

// Rollup is the diagnosis plane's accounting: what escalated, what was
// pulled, what evidence arrived and how it folded.
type Rollup struct {
	// Escalations observed; Episodes opened (pull rounds); Coalesced
	// escalations were absorbed by an episode already in flight.
	Escalations uint64
	Episodes    uint64
	Coalesced   uint64
	// Requests pushed; RequestFailures could not be delivered; Pending
	// pulls still await their snapshot.
	Requests        uint64
	RequestFailures uint64
	Pending         int
	// Snapshots folded and heartbeat spectrum deltas accepted (continuous
	// mode), split into fail/pass coverage windows; Skipped windows were
	// not folded (no coverage, still open, or already folded by an earlier
	// pull or delta of the same device).
	Snapshots      uint64
	Deltas         uint64
	FailWindows    uint64
	PassWindows    uint64
	SkippedWindows uint64
	// Unsolicited snapshots came from devices never asked; Malformed ones
	// carried a foreign block count; Expired pulls were written off
	// unanswered; JournalErrors count evidence whose write-ahead record
	// failed; Dropped items were shed on inbox overflow.
	Unsolicited   uint64
	Malformed     uint64
	Expired       uint64
	JournalErrors uint64
	Dropped       uint64
	// Transactions and Failures are the folded spectra totals.
	Transactions int
	Failures     int
}

func (ro Rollup) String() string {
	return fmt.Sprintf(
		"%d escalations → %d episodes (%d coalesced), %d pulls (%d failed, %d pending, %d expired) → %d snapshots + %d deltas: %d fail + %d pass windows (%d skipped, %d unsolicited, %d malformed, %d dropped, %d journal errors)",
		ro.Escalations, ro.Episodes, ro.Coalesced, ro.Requests, ro.RequestFailures, ro.Pending, ro.Expired,
		ro.Snapshots, ro.Deltas, ro.FailWindows, ro.PassWindows, ro.SkippedWindows, ro.Unsolicited, ro.Malformed,
		ro.Dropped, ro.JournalErrors)
}

// Rollup snapshots the engine's accounting. It is a barrier: items enqueued
// before it are reflected; on a closed engine it reads the frozen state.
func (e *Engine) Rollup() Rollup {
	reply := make(chan Rollup, 1)
	if e.put(item{kind: itemRollup, rollup: reply}, true) {
		return <-reply
	}
	<-e.done
	return e.rollup()
}

// rollup builds the Rollup. Engine-goroutine only (or post-Close).
func (e *Engine) rollup() Rollup {
	return Rollup{
		Escalations:     e.tally.Escalations,
		Episodes:        e.tally.Episodes,
		Coalesced:       e.tally.Coalesced,
		Requests:        e.tally.Requests,
		RequestFailures: e.tally.RequestFailures,
		Pending:         len(e.pending),
		Snapshots:       e.tally.Snapshots,
		Deltas:          e.tally.Deltas,
		FailWindows:     e.tally.FailWindows,
		PassWindows:     e.tally.PassWindows,
		SkippedWindows:  e.tally.SkippedWindows,
		Unsolicited:     e.tally.Unsolicited,
		Malformed:       e.tally.Malformed,
		Expired:         e.tally.Expired,
		JournalErrors:   e.tally.JournalErrors,
		Dropped:         e.dropped.Load(),
		Transactions:    e.spectra.Transactions(),
		Failures:        e.spectra.Failures(),
	}
}
