// Package metrics provides the latency-observability primitives of the
// fleet's SLO plane: a lock-free fixed-bucket (HDR-style) histogram cheap
// enough to record on the per-event dispatch hot path, quantile extraction
// over immutable snapshots, and Prometheus text rendering for the daemon's
// /metrics endpoint.
package metrics

import (
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// Bucket geometry: recorded values are durations in nanoseconds. Values
// below 2·2^subBits nanoseconds get exact one-nanosecond buckets; above
// that, each power of two is split into 2^subBits sub-buckets, bounding the
// relative quantile error at ~3% while keeping the whole histogram a flat
// array of ~1.2k counters (~10 KiB) recorded into with one atomic add and
// no locks.
const (
	subBits  = 5
	subCount = 1 << subBits
	// maxExp caps recorded values at 2^maxExp ns (~18 minutes); anything
	// slower saturates the top bucket, which is already far past any
	// latency SLO worth stating.
	maxExp     = 40
	maxValue   = int64(1) << maxExp
	numBuckets = (maxExp-subBits)*subCount + subCount + 1
)

// bucketOf maps a non-negative nanosecond value to its bucket index. The
// linear region (indices [0, 2·subCount)) holds values below 2·subCount
// exactly; above it, bucket b holds values with their top bit at position
// b+subBits, split by the next subBits bits.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	if v > maxValue {
		v = maxValue
	}
	b := bits.Len64(uint64(v)) - (subBits + 1)
	if b < 0 {
		b = 0
	}
	return b*subCount + int(v>>uint(b))
}

// upperOf is bucketOf's inverse: the largest nanosecond value the bucket
// holds, which is what quantile extraction reports (a conservative,
// never-flattering estimate).
func upperOf(i int) int64 {
	b := i/subCount - 1
	if b < 0 {
		b = 0
	}
	sub := int64(i - b*subCount)
	return (sub+1)<<uint(b) - 1
}

// Histogram is a lock-free latency histogram. Record may be called
// concurrently from any number of goroutines; Snapshot may race Record and
// returns a nearly-consistent copy (counters move one atomic add at a
// time, so a racing snapshot is at worst one observation stale per
// counter).
type Histogram struct {
	counts [numBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64
	// exemplars holds, per bucket, the trace ID of the most recent sampled
	// observation that landed there (§6.2 exemplars): a latency bucket is a
	// count, an exemplar is the name of a span chain explaining one of the
	// observations it counted. Zero means "no sampled observation yet".
	exemplars [numBuckets]atomic.Uint64
}

// New returns an empty histogram.
func New() *Histogram { return &Histogram{} }

// Record adds one observation. Negative durations clamp to zero; durations
// beyond ~18 minutes saturate the top bucket.
func (h *Histogram) Record(d time.Duration) { h.RecordEx(d, 0) }

// RecordEx adds one observation and, when traceID is nonzero (the
// observation belongs to a sampled trace), stamps it as the bucket's
// exemplar. The unsampled path pays nothing beyond Record.
func (h *Histogram) RecordEx(d time.Duration, traceID uint64) {
	v := int64(d)
	if v < 0 {
		v = 0
	}
	b := bucketOf(v)
	h.counts[b].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	if traceID != 0 {
		h.exemplars[b].Store(traceID)
	}
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() Snapshot {
	var s Snapshot
	for i := range h.counts {
		s.counts[i] = h.counts[i].Load()
		s.exemplars[i] = h.exemplars[i].Load()
	}
	s.count = h.count.Load()
	s.sum = h.sum.Load()
	return s
}

// Snapshot is an immutable copy of a histogram, mergeable across shards.
type Snapshot struct {
	counts    [numBuckets]uint64
	exemplars [numBuckets]uint64
	count     uint64
	sum       int64
}

// Merge adds another snapshot's observations into s. Exemplars are not
// additive; a bucket keeps its own unless the other snapshot has one and
// it does not — any sampled witness beats none.
func (s *Snapshot) Merge(o Snapshot) {
	for i := range s.counts {
		s.counts[i] += o.counts[i]
		if s.exemplars[i] == 0 {
			s.exemplars[i] = o.exemplars[i]
		}
	}
	s.count += o.count
	s.sum += o.sum
}

// Count returns the number of recorded observations.
func (s *Snapshot) Count() uint64 { return s.count }

// Sum returns the summed observations.
func (s *Snapshot) Sum() time.Duration { return time.Duration(s.sum) }

// Quantile returns the value at quantile q in [0,1] as the upper edge of
// the bucket holding the rank — an estimate that errs high (≤ ~3%
// relative), never low. An empty snapshot returns 0.
func (s *Snapshot) Quantile(q float64) time.Duration {
	if s.count == 0 {
		return 0
	}
	return time.Duration(upperOf(s.quantileBucket(q)))
}

// quantileBucket returns the index of the bucket holding quantile q's rank.
func (s *Snapshot) quantileBucket(q float64) int {
	target := uint64(math.Ceil(q * float64(s.count)))
	if target < 1 {
		target = 1
	}
	if target > s.count {
		target = s.count
	}
	var cum uint64
	for i, c := range s.counts {
		cum += c
		if cum >= target {
			return i
		}
	}
	return numBuckets - 1
}

// Exemplar returns the trace ID witnessing quantile q: the exemplar of
// the bucket holding q's rank, or failing that the nearest bucket with
// one — searching upward first (a tail quantile's interesting witness is
// the slower outlier, not the faster median) and then downward. Zero
// means no sampled observation has been recorded anywhere near q.
func (s *Snapshot) Exemplar(q float64) uint64 {
	if s.count == 0 {
		return 0
	}
	at := s.quantileBucket(q)
	for i := at; i < numBuckets; i++ {
		if s.exemplars[i] != 0 {
			return s.exemplars[i]
		}
	}
	for i := at - 1; i >= 0; i-- {
		if s.exemplars[i] != 0 {
			return s.exemplars[i]
		}
	}
	return 0
}

// Max returns the upper edge of the highest non-empty bucket (0 when empty).
func (s *Snapshot) Max() time.Duration {
	for i := numBuckets - 1; i >= 0; i-- {
		if s.counts[i] != 0 {
			return time.Duration(upperOf(i))
		}
	}
	return 0
}

// CountAtMost returns how many observations fall in buckets entirely at or
// below d — the cumulative count a Prometheus `le` bucket reports.
func (s *Snapshot) CountAtMost(d time.Duration) uint64 {
	var cum uint64
	for i, c := range s.counts {
		if time.Duration(upperOf(i)) > d {
			break
		}
		cum += c
	}
	return cum
}

// PromEdges is the default `le` bucket layout for Prometheus export: wide
// enough to bracket both an in-process dispatch (~µs) and a journal-stalled
// one (~s).
var PromEdges = []time.Duration{
	50 * time.Microsecond,
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	time.Millisecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	time.Second,
	5 * time.Second,
	10 * time.Second,
}

// WriteProm renders the snapshot as one Prometheus histogram metric. labels
// is rendered verbatim inside the braces next to `le` (pass "" for none,
// `shard="3"` style otherwise); edges is the `le` layout (PromEdges when
// nil). Prometheus convention makes the unit seconds.
func (s *Snapshot) WriteProm(w io.Writer, name, labels string, edges []time.Duration) {
	if edges == nil {
		edges = PromEdges
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	for _, e := range edges {
		le := strconv.FormatFloat(e.Seconds(), 'g', -1, 64)
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, le, s.CountAtMost(e))
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.count)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(s.Sum().Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count %d\n", name, s.count)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, strconv.FormatFloat(s.Sum().Seconds(), 'g', -1, 64))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, s.count)
	}
}

// WritePromCounters renders a named counter set as Prometheus text, one
// `<prefix>_<name>` line per counter in sorted name order (scrape-stable
// output). labels is rendered verbatim inside braces when non-empty. The
// federation aggregator uses it to serve its merged fleet-wide view; any
// map of order-independent integer folds renders the same way.
func WritePromCounters(w io.Writer, prefix, labels string, counters map[string]int64) {
	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if labels == "" {
			fmt.Fprintf(w, "%s_%s %d\n", prefix, name, counters[name])
		} else {
			fmt.Fprintf(w, "%s_%s{%s} %d\n", prefix, name, labels, counters[name])
		}
	}
}
