package metrics

import (
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

// Every representable value must land in a bucket whose range contains it,
// and bucket upper edges must be monotone — the two properties quantile
// extraction rests on.
func TestBucketGeometry(t *testing.T) {
	vals := []int64{0, 1, 2, 31, 32, 63, 64, 65, 127, 128, 1000, 1 << 20, maxValue - 1, maxValue}
	for i := 0; i < 1000; i++ {
		vals = append(vals, rand.Int63n(maxValue))
	}
	for _, v := range vals {
		b := bucketOf(v)
		if b < 0 || b >= numBuckets {
			t.Fatalf("bucketOf(%d) = %d out of range [0,%d)", v, b, numBuckets)
		}
		if up := upperOf(b); up < v {
			t.Errorf("value %d in bucket %d with upper edge %d < value", v, b, up)
		}
		if b > 0 && upperOf(b-1) >= v {
			t.Errorf("value %d in bucket %d but previous bucket's edge %d already covers it", v, b, upperOf(b-1))
		}
	}
	last := int64(-1)
	for i := 0; i < numBuckets; i++ {
		up := upperOf(i)
		if up <= last {
			t.Fatalf("upperOf not monotone at %d: %d <= %d", i, up, last)
		}
		last = up
	}
}

func TestQuantiles(t *testing.T) {
	h := New()
	// 1..1000 µs uniformly: p50 ≈ 500µs, p99 ≈ 990µs, p999 ≈ 1000µs.
	for i := 1; i <= 1000; i++ {
		h.Record(time.Duration(i) * time.Microsecond)
	}
	s := h.Snapshot()
	if s.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", s.Count())
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.5, 500 * time.Microsecond}, {0.99, 990 * time.Microsecond}, {0.999, 999 * time.Microsecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		if got < c.want || float64(got) > float64(c.want)*1.05 {
			t.Errorf("p%g = %v, want within [%v, %v]", c.q*100, got, c.want, time.Duration(float64(c.want)*1.05))
		}
	}
	if lo, hi := s.Quantile(0.5), s.Quantile(0.99); lo > hi {
		t.Errorf("quantiles not monotone: p50 %v > p99 %v", lo, hi)
	}
	var empty Snapshot
	if empty.Quantile(0.99) != 0 {
		t.Errorf("empty snapshot p99 = %v, want 0", empty.Quantile(0.99))
	}
}

func TestRecordClampsOutliers(t *testing.T) {
	h := New()
	h.Record(-time.Second)
	h.Record(time.Hour) // beyond maxValue: saturates the top bucket
	s := h.Snapshot()
	if s.Count() != 2 {
		t.Fatalf("count = %d, want 2", s.Count())
	}
	if s.Quantile(0) != 0 {
		t.Errorf("negative record should land at 0, p0 = %v", s.Quantile(0))
	}
	if s.Quantile(1) < time.Duration(maxValue) {
		t.Errorf("outlier record should saturate the top bucket, p100 = %v", s.Quantile(1))
	}
}

func TestMerge(t *testing.T) {
	a, b := New(), New()
	for i := 0; i < 100; i++ {
		a.Record(time.Millisecond)
		b.Record(time.Second)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if sa.Count() != 200 {
		t.Fatalf("merged count = %d, want 200", sa.Count())
	}
	if p25, p75 := sa.Quantile(0.25), sa.Quantile(0.75); p25 > 2*time.Millisecond || p75 < time.Second {
		t.Errorf("merged quantiles p25=%v p75=%v do not straddle the two populations", p25, p75)
	}
}

// The hot path is concurrent by design: shard goroutines record while the
// metrics endpoint snapshots. Conservation must hold under -race.
func TestConcurrentRecording(t *testing.T) {
	h := New()
	const workers, each = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				h.Record(time.Duration(w*1000+i) * time.Nanosecond)
				if i%1024 == 0 {
					s := h.Snapshot()
					_ = s.Quantile(0.99) // snapshots may race records
				}
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count() != workers*each {
		t.Fatalf("count = %d, want %d", s.Count(), workers*each)
	}
	var cum uint64
	for _, c := range s.counts {
		cum += c
	}
	if cum != s.Count() {
		t.Fatalf("bucket sum %d != count %d", cum, s.Count())
	}
}

func TestWriteProm(t *testing.T) {
	h := New()
	for i := 0; i < 10; i++ {
		h.Record(200 * time.Microsecond)
	}
	h.Record(2 * time.Second)
	s := h.Snapshot()
	var sb strings.Builder
	s.WriteProm(&sb, "fleet_ingest_latency_seconds", `shard="0"`, nil)
	out := sb.String()
	for _, want := range []string{
		`fleet_ingest_latency_seconds_bucket{shard="0",le="0.00025"} 10`,
		`fleet_ingest_latency_seconds_bucket{shard="0",le="+Inf"} 11`,
		`fleet_ingest_latency_seconds_count{shard="0"} 11`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendering missing %q:\n%s", want, out)
		}
	}
	var sb2 strings.Builder
	s.WriteProm(&sb2, "m", "", []time.Duration{time.Millisecond})
	if !strings.Contains(sb2.String(), `m_bucket{le="0.001"} 10`) {
		t.Errorf("unlabeled rendering wrong:\n%s", sb2.String())
	}
}

// WritePromCounters renders sorted, label-correct counter lines.
func TestWritePromCounters(t *testing.T) {
	var sb strings.Builder
	WritePromCounters(&sb, "trader_federation", "", map[string]int64{"outputs": 60, "deviations": 2})
	want := "trader_federation_deviations 2\ntrader_federation_outputs 60\n"
	if sb.String() != want {
		t.Fatalf("got:\n%s\nwant:\n%s", sb.String(), want)
	}
	sb.Reset()
	WritePromCounters(&sb, "trader_federation", `edge="edge-0"`, map[string]int64{"outputs": -3})
	if got, want := sb.String(), "trader_federation_outputs{edge=\"edge-0\"} -3\n"; got != want {
		t.Fatalf("got %q, want %q", got, want)
	}
}

// Exemplars: RecordEx stamps the bucket, Exemplar resolves a quantile to
// the nearest sampled witness, and Merge prefers any witness over none.
func TestExemplars(t *testing.T) {
	h := New()
	for i := 0; i < 99; i++ {
		h.Record(100 * time.Microsecond) // unsampled bulk
	}
	h.RecordEx(80*time.Millisecond, 0xabcdef) // the sampled tail outlier
	s := h.Snapshot()
	if got := s.Exemplar(0.99); got != 0xabcdef {
		t.Fatalf("p99 exemplar %#x, want 0xabcdef", got)
	}
	// The bulk has no exemplar of its own; the median resolves upward to
	// the only witness there is.
	if got := s.Exemplar(0.5); got != 0xabcdef {
		t.Fatalf("p50 exemplar %#x, want upward fallback 0xabcdef", got)
	}
	// A witness below the quantile is found by the downward fallback.
	h2 := New()
	h2.RecordEx(50*time.Microsecond, 0x11)
	for i := 0; i < 99; i++ {
		h2.Record(80 * time.Millisecond)
	}
	s2 := h2.Snapshot()
	if got := s2.Exemplar(0.99); got != 0x11 {
		t.Fatalf("downward fallback exemplar %#x, want 0x11", got)
	}
	var empty Snapshot
	if empty.Exemplar(0.99) != 0 {
		t.Fatal("empty snapshot must have no exemplar")
	}
}

func TestExemplarMerge(t *testing.T) {
	a := New()
	a.Record(time.Millisecond)
	b := New()
	b.RecordEx(time.Millisecond, 0x77)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Merge(sb)
	if got := sa.Exemplar(0.5); got != 0x77 {
		t.Fatalf("merged exemplar %#x, want 0x77 (witness beats none)", got)
	}
	// An existing witness is kept over the merged-in one.
	c := New()
	c.RecordEx(time.Millisecond, 0x88)
	sc := c.Snapshot()
	sc.Merge(sb)
	if got := sc.Exemplar(0.5); got != 0x88 {
		t.Fatalf("merged exemplar %#x, want own 0x88 kept", got)
	}
}
