// Package mediaplayer simulates an MPlayer-like software media player — the
// second System Under Observation of the paper (Sect. 5: "the framework is
// used for awareness experiments with the open source media player MPlayer,
// investigating both correctness and performance issues"). The pipeline is
// demuxer → audio/video decoders → A/V sync → outputs; its observables are
// the rendered frame rate (performance) and the audio/video clock drift
// (correctness). Faults: a demuxer stall freezes playback, and an audio
// clock drift desynchronises lip-sync.
package mediaplayer

import (
	"fmt"

	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/statemachine"
)

// Cmd is a player command.
type Cmd int

// Player commands.
const (
	CmdPlay Cmd = iota
	CmdPause
	CmdStop
	numCmds
)

var cmdNames = [...]string{"play", "pause", "stop"}

// String names the command.
func (c Cmd) String() string {
	if c < 0 || int(c) >= len(cmdNames) {
		return fmt.Sprintf("cmd(%d)", int(c))
	}
	return cmdNames[c]
}

// Config sizes the player.
type Config struct {
	// FramePeriod is the video frame period (default 40ms → 25 fps).
	FramePeriod sim.Time
	// ReportEvery is the A/V status reporting period (default 200ms; keep
	// it a multiple of FramePeriod so the healthy frame rate is exact).
	ReportEvery sim.Time
}

func (c *Config) fill() {
	if c.FramePeriod <= 0 {
		c.FramePeriod = 40 * sim.Millisecond
	}
	if c.ReportEvery <= 0 {
		c.ReportEvery = 200 * sim.Millisecond
	}
}

// Player is the simulated media player.
type Player struct {
	cfg      Config
	kernel   *sim.Kernel
	bus      *event.Bus
	injector *faults.Injector

	playing bool
	paused  bool

	videoClock sim.Time // media time of the last rendered video frame
	audioClock sim.Time // media time of the audio output
	frames     uint64
	lastFrames uint64
	seq        uint64

	frameRep  *sim.Repeater
	reportRep *sim.Repeater
}

// New creates a player with its own bus and fault injector.
func New(kernel *sim.Kernel, cfg Config) *Player {
	cfg.fill()
	p := &Player{
		cfg: cfg, kernel: kernel,
		bus:      event.NewBus(),
		injector: faults.NewInjector(kernel),
	}
	return p
}

// Bus returns the observation bus.
func (p *Player) Bus() *event.Bus { return p.bus }

// Injector returns the fault injector.
func (p *Player) Injector() *faults.Injector { return p.injector }

// Playing reports whether playback is active (and not paused).
func (p *Player) Playing() bool { return p.playing && !p.paused }

func (p *Player) publish(kind event.Kind, name string, vals ...event.Value) {
	p.seq++
	p.bus.Publish(event.Event{
		Kind: kind, Name: name, Source: "player", At: p.kernel.Now(),
		Seq: p.seq, Values: vals,
	})
}

// Do executes a command.
func (p *Player) Do(c Cmd) {
	p.publish(event.Input, "cmd", event.Value{Name: "cmd", V: float64(c)})
	switch c {
	case CmdPlay:
		if p.playing && p.paused {
			p.paused = false
			return
		}
		if p.playing {
			return
		}
		p.playing = true
		p.paused = false
		p.videoClock, p.audioClock = 0, 0
		p.frames, p.lastFrames = 0, 0
		// Render the first frame immediately so every report window holds
		// a full complement of frames (the repeater fires after one period).
		p.tickFrame()
		p.frameRep = p.kernel.Every(p.cfg.FramePeriod, p.tickFrame)
		p.reportRep = p.kernel.Every(p.cfg.ReportEvery, p.report)
	case CmdPause:
		if p.playing {
			p.paused = true
		}
	case CmdStop:
		p.playing = false
		p.paused = false
		if p.frameRep != nil {
			p.frameRep.Stop()
			p.frameRep = nil
		}
		if p.reportRep != nil {
			p.reportRep.Stop()
			p.reportRep = nil
		}
	}
}

// tickFrame advances the pipeline by one frame period.
func (p *Player) tickFrame() {
	if !p.Playing() {
		return
	}
	if p.injector.AnyActive(faults.Deadlock, "demuxer") {
		// Demuxer stall: no packets, no frames, clocks freeze — the
		// performance failure (playback freezes, fps drops to 0).
		return
	}
	p.videoClock += p.cfg.FramePeriod
	p.frames++
	// Audio clock normally tracks the video clock; a ValueCorruption on
	// "audio-clock" makes it run fast/slow — the lip-sync correctness bug.
	step := float64(p.cfg.FramePeriod)
	if p.injector.AnyActive(faults.ValueCorruption, "audio-clock") {
		for _, f := range p.injector.Faults() {
			if f.Kind == faults.ValueCorruption && f.Target == "audio-clock" && p.injector.Active(f.ID) {
				step *= f.Param
			}
		}
	}
	p.audioClock += sim.Time(step)
}

// report publishes the A/V status observable.
func (p *Player) report() {
	if !p.Playing() {
		return
	}
	driftMs := float64(p.audioClock-p.videoClock) / float64(sim.Millisecond)
	window := p.frames - p.lastFrames
	p.lastFrames = p.frames
	fps := float64(window) / p.cfg.ReportEvery.Seconds()
	p.publish(event.Output, "av",
		event.Value{Name: "fps", V: fps},
		event.Value{Name: "drift", V: driftMs},
	)
}

// BuildSpecModel returns the player's specification model: playback state
// driven by commands; expected fps while playing; expected drift 0.
func BuildSpecModel(kernel *sim.Kernel, cfg Config) *statemachine.Model {
	cfg.fill()
	cmd := func(c Cmd) func(*statemachine.Context) bool {
		return func(ctx *statemachine.Context) bool {
			v, ok := ctx.Event.Get("cmd")
			return ok && Cmd(v) == c
		}
	}
	expectedFPS := 1 / cfg.FramePeriod.Seconds()
	setPlaying := func(on float64) func(*statemachine.Context) {
		return func(c *statemachine.Context) {
			c.Set("playing", on)
			c.Set("fps", on*expectedFPS)
			c.Set("drift", 0)
		}
	}
	r := statemachine.NewRegion("playback")
	r.Add(&statemachine.State{
		Name:  "stopped",
		Entry: setPlaying(0),
		Transitions: []statemachine.Transition{
			{Event: "cmd", Guard: cmd(CmdPlay), Target: "playing"},
		},
	})
	r.Add(&statemachine.State{
		Name:  "playing",
		Entry: setPlaying(1),
		Transitions: []statemachine.Transition{
			{Event: "cmd", Guard: cmd(CmdPause), Target: "pausedS"},
			{Event: "cmd", Guard: cmd(CmdStop), Target: "stopped"},
		},
	})
	r.Add(&statemachine.State{
		Name:  "pausedS",
		Entry: setPlaying(0),
		Transitions: []statemachine.Transition{
			{Event: "cmd", Guard: cmd(CmdPlay), Target: "playing"},
			{Event: "cmd", Guard: cmd(CmdStop), Target: "stopped"},
		},
	})
	return statemachine.MustModel("player-spec", kernel, r)
}
