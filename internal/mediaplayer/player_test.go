package mediaplayer

import (
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/wire"
)

func TestPlayPauseStop(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, Config{})
	if p.Playing() {
		t.Fatal("should start stopped")
	}
	p.Do(CmdPlay)
	if !p.Playing() {
		t.Fatal("play failed")
	}
	k.Run(sim.Second)
	p.Do(CmdPause)
	if p.Playing() {
		t.Fatal("pause failed")
	}
	p.Do(CmdPlay)
	if !p.Playing() {
		t.Fatal("resume failed")
	}
	p.Do(CmdStop)
	if p.Playing() {
		t.Fatal("stop failed")
	}
	if CmdPlay.String() != "play" || Cmd(9).String() != "cmd(9)" {
		t.Fatal("names")
	}
}

func TestHealthyPlaybackReports(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, Config{})
	var avs []event.Event
	p.Bus().Subscribe("av", func(e event.Event) { avs = append(avs, e) })
	p.Do(CmdPlay)
	k.Run(2 * sim.Second)
	if len(avs) < 8 {
		t.Fatalf("av reports = %d, want ~10", len(avs))
	}
	for _, e := range avs {
		fps, _ := e.Get("fps")
		drift, _ := e.Get("drift")
		if fps != 25 {
			t.Fatalf("healthy fps = %v, want 25", fps)
		}
		if drift != 0 {
			t.Fatalf("healthy drift = %v, want 0", drift)
		}
	}
}

func TestPauseStopsClocksAndReports(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, Config{})
	n := 0
	p.Bus().Subscribe("av", func(event.Event) { n++ })
	p.Do(CmdPlay)
	k.Run(sim.Second)
	atPause := n
	p.Do(CmdPause)
	k.Run(2 * sim.Second)
	if n != atPause {
		t.Fatal("paused player should not report")
	}
}

func TestStallFreezesPlayback(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, Config{})
	var lastFPS float64 = -1
	p.Bus().Subscribe("av", func(e event.Event) { lastFPS, _ = e.Get("fps") })
	p.Do(CmdPlay)
	p.Injector().Schedule(faults.Fault{
		ID: "stall", Kind: faults.Deadlock, Target: "demuxer",
		At: sim.Second, Duration: sim.Second,
	})
	k.Run(1900 * sim.Millisecond)
	if lastFPS != 0 {
		t.Fatalf("fps during stall = %v, want 0", lastFPS)
	}
	k.Run(4 * sim.Second)
	if lastFPS != 25 {
		t.Fatalf("fps after stall = %v, want recovery to 25", lastFPS)
	}
}

func TestAudioDriftGrows(t *testing.T) {
	k := sim.NewKernel(1)
	p := New(k, Config{})
	var drift float64
	p.Bus().Subscribe("av", func(e event.Event) { drift, _ = e.Get("drift") })
	p.Do(CmdPlay)
	p.Injector().Schedule(faults.Fault{
		ID: "drift", Kind: faults.ValueCorruption, Target: "audio-clock",
		At: 0, Param: 1.1, // audio runs 10% fast
	})
	k.Run(2 * sim.Second)
	// 2s × 10% = ~200ms drift.
	if drift < 150 || drift > 250 {
		t.Fatalf("drift = %vms, want ~200ms", drift)
	}
}

// E12: the awareness monitor on the media player detects both failure
// classes — the stall via silence/fps (performance) and the drift via the
// comparator (correctness).
func TestMonitorDetectsStallAndDrift(t *testing.T) {
	run := func(fault faults.Fault) []wire.ErrorReport {
		k := sim.NewKernel(2)
		p := New(k, Config{})
		model := BuildSpecModel(k, Config{})
		mon, err := core.NewMonitor(k, model, core.Configuration{
			Observables: []core.Observable{
				{Name: "fps", EventName: "av", ValueName: "fps", ModelVar: "fps",
					Threshold: 5, Tolerance: 1, EnableVar: "playing",
					MaxSilence: 500 * sim.Millisecond},
				{Name: "av-drift", EventName: "av", ValueName: "drift", ModelVar: "drift",
					Threshold: 80, Tolerance: 1, EnableVar: "playing"},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		var reports []wire.ErrorReport
		mon.OnError(func(r wire.ErrorReport) { reports = append(reports, r) })
		if err := mon.Start(); err != nil {
			t.Fatal(err)
		}
		mon.AttachBus(p.Bus())
		p.Do(CmdPlay)
		p.Injector().Schedule(fault)
		k.Run(5 * sim.Second)
		return reports
	}

	// Healthy baseline: no reports.
	healthy := run(faults.Fault{ID: "noop", Kind: faults.Overload, Target: "elsewhere", At: sim.Second})
	if len(healthy) != 0 {
		t.Fatalf("healthy playback flagged: %v", healthy)
	}

	stall := run(faults.Fault{ID: "stall", Kind: faults.Deadlock, Target: "demuxer", At: sim.Second, Duration: 2 * sim.Second})
	foundFPS := false
	for _, r := range stall {
		if r.Observable == "fps" {
			foundFPS = true
		}
	}
	if !foundFPS {
		t.Fatalf("stall not detected: %v", stall)
	}

	drift := run(faults.Fault{ID: "drift", Kind: faults.ValueCorruption, Target: "audio-clock", At: sim.Second, Param: 1.1})
	foundDrift := false
	for _, r := range drift {
		if r.Observable == "av-drift" {
			foundDrift = true
		}
	}
	if !foundDrift {
		t.Fatalf("drift not detected: %v", drift)
	}
}

func TestSpecModelConformance(t *testing.T) {
	k := sim.NewKernel(3)
	p := New(k, Config{})
	model := BuildSpecModel(k, Config{})
	if err := model.Start(); err != nil {
		t.Fatal(err)
	}
	cmds := []Cmd{CmdPlay, CmdPause, CmdPlay, CmdStop, CmdPause, CmdPlay, CmdPlay, CmdStop}
	for _, c := range cmds {
		p.Do(c)
		ev := event.Event{Kind: event.Input, Name: "cmd"}.With("cmd", float64(c))
		if err := model.Dispatch(ev); err != nil {
			t.Fatal(err)
		}
		k.Run(k.Now() + 100*sim.Millisecond)
		want := 0.0
		if p.Playing() {
			want = 1
		}
		if model.Var("playing") != want {
			t.Fatalf("after %v: model playing=%v, player=%v", c, model.Var("playing"), want)
		}
	}
}
