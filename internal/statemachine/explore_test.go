package statemachine

import (
	"strings"
	"testing"

	"trader/internal/event"
)

func exploreModel(t *testing.T) *Model {
	t.Helper()
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "x", Target: "b"}}})
	r.Add(&State{Name: "b", Transitions: []Transition{{Event: "y", Target: "a"}}})
	r.Add(&State{Name: "orphan"}) // unreachable on purpose
	m := MustModel("ex", nil, r)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestExploreReachabilityAndUnreachable(t *testing.T) {
	m := exploreModel(t)
	res := m.Explore(ExploreOptions{Alphabet: []string{"x", "y"}})
	if res.StatesVisited != 2 {
		t.Fatalf("StatesVisited = %d, want 2", res.StatesVisited)
	}
	if len(res.Unreachable) != 1 || res.Unreachable[0] != "r/orphan" {
		t.Fatalf("Unreachable = %v, want [r/orphan]", res.Unreachable)
	}
	if res.Truncated {
		t.Fatal("should not truncate")
	}
	// Model state restored after exploration.
	if m.Region("r").Current() != "a" {
		t.Fatalf("explore must restore state; current = %q", m.Region("r").Current())
	}
}

func TestExploreInvariantViolation(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "inc",
		Action: func(c *Context) { c.Set("n", c.Get("n")+1) }}}})
	m := MustModel("inv", nil, r)
	m.AddInvariant("n<3", func(m *Model) bool { return m.Var("n") < 3 })
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"inc"}, MaxDepth: 10})
	found := false
	for _, v := range res.Violations {
		if v.Kind == "invariant" && strings.Contains(v.Detail, "n<3") {
			found = true
			if len(v.Trace) != 3 {
				t.Fatalf("violation trace = %v, want 3 steps of inc", v.Trace)
			}
		}
	}
	if !found {
		t.Fatalf("no invariant violation found: %+v", res.Violations)
	}
}

func TestExploreNondeterminism(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{
		{Event: "e", Target: "b"},
		{Event: "e", Target: "c"},
	}})
	r.Add(&State{Name: "b"})
	r.Add(&State{Name: "c"})
	m := MustModel("nd", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"e"}})
	found := false
	for _, v := range res.Violations {
		if v.Kind == "nondeterminism" {
			found = true
			if v.String() == "" {
				t.Fatal("violation should render")
			}
		}
	}
	if !found {
		t.Fatalf("nondeterminism not detected: %+v", res.Violations)
	}
}

func TestExploreGuardedNotNondeterministic(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{
		{Event: "e", Guard: func(c *Context) bool { return c.Get("flag") != 0 }, Target: "b"},
		{Event: "e", Guard: func(c *Context) bool { return c.Get("flag") == 0 }, Target: "c"},
	}})
	r.Add(&State{Name: "b"})
	r.Add(&State{Name: "c"})
	m := MustModel("g", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"e"}})
	for _, v := range res.Violations {
		if v.Kind == "nondeterminism" {
			t.Fatalf("mutually exclusive guards flagged: %v", v)
		}
	}
}

func TestExploreDeadlock(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "go", Target: "sink"}}})
	r.Add(&State{Name: "sink"}) // ignores everything
	m := MustModel("dl", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"go"}})
	found := false
	for _, v := range res.Violations {
		if v.Kind == "deadlock" && strings.Contains(v.Detail, "sink") {
			found = true
		}
	}
	if !found {
		t.Fatalf("deadlock at sink not reported: %+v", res.Violations)
	}
}

func TestExploreTimedTransitions(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "wait", Transitions: []Transition{{After: 100, Target: "done"}}})
	r.Add(&State{Name: "done"})
	m := MustModel("timed", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: nil})
	if res.StatesVisited != 2 {
		t.Fatalf("timed successor not explored: visited %d", res.StatesVisited)
	}
	if len(res.Unreachable) != 0 {
		t.Fatalf("Unreachable = %v", res.Unreachable)
	}
}

func TestExploreMaxStatesTruncates(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "inc",
		Action: func(c *Context) { c.Set("n", c.Get("n")+1) }}}})
	m := MustModel("big", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"inc"}, MaxStates: 5, MaxDepth: 1000})
	if !res.Truncated {
		t.Fatal("expected truncation")
	}
	if res.StatesVisited != 5 {
		t.Fatalf("visited %d, want 5", res.StatesVisited)
	}
}

func TestExploreMaxDepthTruncates(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "inc",
		Action: func(c *Context) { c.Set("n", c.Get("n")+1) }}}})
	m := MustModel("deep", nil, r)
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"inc"}, MaxDepth: 3, MaxStates: 1000})
	if !res.Truncated {
		t.Fatal("expected depth truncation")
	}
	if res.StatesVisited != 4 { // initial + 3 levels
		t.Fatalf("visited %d, want 4", res.StatesVisited)
	}
}

// The paper (Sect. 4.2) reports that feature-interaction bugs (dual screen ×
// teletext × OSD suppressing each other) are easy to introduce and that
// executable models plus checking catch them. This test seeds such a bug —
// teletext can be entered while the menu OSD is up, violating the "menu
// suppresses teletext" rule — and checks exploration finds it.
func TestExploreFindsFeatureInteractionBug(t *testing.T) {
	osd := NewRegion("osd")
	osd.Add(&State{Name: "none", Transitions: []Transition{
		{Event: "menu", Target: "menuOn", Action: func(c *Context) { c.Set("menu", 1) }}}})
	osd.Add(&State{Name: "menuOn", Transitions: []Transition{
		{Event: "menu", Target: "none", Action: func(c *Context) { c.Set("menu", 0) }}}})

	txt := NewRegion("teletext")
	txt.Add(&State{Name: "off", Transitions: []Transition{
		// BUG: missing guard "menu must be closed".
		{Event: "text", Target: "onT", Action: func(c *Context) { c.Set("txt", 1) }}}})
	txt.Add(&State{Name: "onT", Transitions: []Transition{
		{Event: "text", Target: "off", Action: func(c *Context) { c.Set("txt", 0) }}}})

	m := MustModel("tvfrag", nil, osd, txt)
	m.AddInvariant("menu-suppresses-teletext", func(m *Model) bool {
		return !(m.Var("menu") == 1 && m.Var("txt") == 1)
	})
	_ = m.Start()
	res := m.Explore(ExploreOptions{Alphabet: []string{"menu", "text"}})
	found := false
	for _, v := range res.Violations {
		if v.Kind == "invariant" {
			found = true
		}
	}
	if !found {
		t.Fatal("feature-interaction bug not found by exploration")
	}

	// Fixed model: guard teletext on menu being closed.
	txt2 := NewRegion("teletext")
	txt2.Add(&State{Name: "off", Transitions: []Transition{
		{Event: "text", Guard: func(c *Context) bool { return c.Get("menu") == 0 },
			Target: "onT", Action: func(c *Context) { c.Set("txt", 1) }}}})
	txt2.Add(&State{Name: "onT", Transitions: []Transition{
		{Event: "text", Target: "off", Action: func(c *Context) { c.Set("txt", 0) }}}})
	// The symmetric interaction also needs fixing: opening the menu while
	// teletext is on must be suppressed too (or it would close teletext; we
	// model suppression, which is what the scenario in the paper describes).
	osd2 := NewRegion("osd")
	osd2.Add(&State{Name: "none", Transitions: []Transition{
		{Event: "menu", Guard: func(c *Context) bool { return c.Get("txt") == 0 },
			Target: "menuOn", Action: func(c *Context) { c.Set("menu", 1) }}}})
	osd2.Add(&State{Name: "menuOn", Transitions: []Transition{
		{Event: "menu", Target: "none", Action: func(c *Context) { c.Set("menu", 0) }}}})
	m2 := MustModel("tvfix", nil, osd2, txt2)
	m2.AddInvariant("menu-suppresses-teletext", func(m *Model) bool {
		return !(m.Var("menu") == 1 && m.Var("txt") == 1)
	})
	_ = m2.Start()
	res2 := m2.Explore(ExploreOptions{Alphabet: []string{"menu", "text"}})
	for _, v := range res2.Violations {
		if v.Kind == "invariant" {
			t.Fatalf("fixed model still violates: %v", v)
		}
	}
}

func BenchmarkDispatch(b *testing.B) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "x", Target: "b"}}})
	r.Add(&State{Name: "b", Transitions: []Transition{{Event: "x", Target: "a"}}})
	m := MustModel("bench", nil, r)
	_ = m.Start()
	ev := event.Event{Name: "x"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Dispatch(ev)
	}
}

func BenchmarkExplore(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := NewRegion("r")
		r.Add(&State{Name: "a", Transitions: []Transition{{Event: "inc",
			Action: func(c *Context) { c.Set("n", float64((int(c.Get("n"))+1)%50)) }}}})
		m := MustModel("bench", nil, r)
		_ = m.Start()
		m.Explore(ExploreOptions{Alphabet: []string{"inc"}, MaxDepth: 100})
	}
}
