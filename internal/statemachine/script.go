package statemachine

import (
	"fmt"

	"trader/internal/event"
)

// Script is a model test script (Sect. 4.2): a sequence of stimuli with
// expected model reactions, used to increase confidence in model fidelity.
type Script struct {
	Name  string
	Steps []ScriptStep
}

// ScriptStep feeds one event and asserts on the resulting model state.
type ScriptStep struct {
	// Event is the input event name to dispatch ("" dispatches nothing, so a
	// step can assert the initial configuration).
	Event string
	// Values are carried on the input event.
	Values []event.Value
	// ExpectState maps region name to the state that must be active
	// (current leaf or an ancestor of it) after the step.
	ExpectState map[string]string
	// ExpectVars maps variable names to exact expected values.
	ExpectVars map[string]float64
}

// ScriptFailure describes one failed assertion.
type ScriptFailure struct {
	Script string
	Step   int
	Detail string
}

func (f ScriptFailure) Error() string {
	return fmt.Sprintf("script %q step %d: %s", f.Script, f.Step, f.Detail)
}

// RunScript executes the script against the model (which must be started)
// and returns all assertion failures. The model is left in its post-script
// state; callers wanting isolation should build a fresh model per script.
func (m *Model) RunScript(s Script) []ScriptFailure {
	var fails []ScriptFailure
	for i, step := range s.Steps {
		if step.Event != "" {
			ev := event.Event{Kind: event.Input, Name: step.Event, Values: step.Values, At: m.now()}
			if err := m.Dispatch(ev); err != nil {
				fails = append(fails, ScriptFailure{s.Name, i, err.Error()})
			}
		}
		for region, want := range step.ExpectState {
			r := m.Region(region)
			if r == nil {
				fails = append(fails, ScriptFailure{s.Name, i, fmt.Sprintf("unknown region %q", region)})
				continue
			}
			if !r.In(want) {
				fails = append(fails, ScriptFailure{s.Name, i,
					fmt.Sprintf("region %q in %q, want %q active", region, r.Current(), want)})
			}
		}
		for name, want := range step.ExpectVars {
			if got := m.Var(name); got != want {
				fails = append(fails, ScriptFailure{s.Name, i,
					fmt.Sprintf("var %q = %g, want %g", name, got, want)})
			}
		}
	}
	return fails
}
