package statemachine

import (
	"strings"
	"testing"

	"trader/internal/event"
	"trader/internal/sim"
)

// toggleModel builds a two-state machine: off -(power)-> on -(power)-> off.
func toggleModel(t *testing.T, k *sim.Kernel) *Model {
	t.Helper()
	r := NewRegion("power")
	r.Add(&State{
		Name:        "off",
		Entry:       func(c *Context) { c.Set("on", 0) },
		Transitions: []Transition{{Event: "power", Target: "on"}},
	})
	r.Add(&State{
		Name:        "on",
		Entry:       func(c *Context) { c.Set("on", 1) },
		Transitions: []Transition{{Event: "power", Target: "off"}},
	})
	m, err := NewModel("toggle", k, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

func dispatch(t *testing.T, m *Model, name string) {
	t.Helper()
	if err := m.Dispatch(event.Event{Kind: event.Input, Name: name}); err != nil {
		t.Fatalf("Dispatch(%s): %v", name, err)
	}
}

func TestToggle(t *testing.T) {
	m := toggleModel(t, nil)
	if m.Region("power").Current() != "off" {
		t.Fatalf("initial = %q, want off", m.Region("power").Current())
	}
	if m.Var("on") != 0 {
		t.Fatal("entry action of initial state did not run")
	}
	dispatch(t, m, "power")
	if m.Region("power").Current() != "on" || m.Var("on") != 1 {
		t.Fatalf("after power: state=%q on=%v", m.Region("power").Current(), m.Var("on"))
	}
	dispatch(t, m, "power")
	if m.Region("power").Current() != "off" {
		t.Fatal("second power should toggle back off")
	}
}

func TestUnknownEventIgnored(t *testing.T) {
	m := toggleModel(t, nil)
	dispatch(t, m, "bogus")
	if m.Region("power").Current() != "off" {
		t.Fatal("unknown event must not change state")
	}
}

func TestHierarchyEntryExitOrder(t *testing.T) {
	var trace []string
	log := func(s string) func(*Context) {
		return func(*Context) { trace = append(trace, s) }
	}
	r := NewRegion("r")
	r.Add(&State{Name: "A", Initial: "A1", Entry: log("+A"), Exit: log("-A")})
	r.Add(&State{Name: "A1", Parent: "A", Entry: log("+A1"), Exit: log("-A1"),
		Transitions: []Transition{{Event: "go", Target: "B1"}}})
	r.Add(&State{Name: "B", Initial: "B1", Entry: log("+B"), Exit: log("-B")})
	r.Add(&State{Name: "B1", Parent: "B", Entry: log("+B1"), Exit: log("-B1")})
	m := MustModel("h", nil, r)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	dispatch(t, m, "go")
	want := "+A,+A1,-A1,-A,+B,+B1"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("trace = %s, want %s", got, want)
	}
	if !m.Region("r").In("B") || !m.Region("r").In("B1") {
		t.Fatal("In(B)/In(B1) should hold after transition")
	}
}

func TestTransitionWithinParentKeepsParentActive(t *testing.T) {
	var trace []string
	log := func(s string) func(*Context) {
		return func(*Context) { trace = append(trace, s) }
	}
	r := NewRegion("r")
	r.Add(&State{Name: "P", Initial: "X", Entry: log("+P"), Exit: log("-P")})
	r.Add(&State{Name: "X", Parent: "P", Exit: log("-X"),
		Transitions: []Transition{{Event: "next", Target: "Y"}}})
	r.Add(&State{Name: "Y", Parent: "P", Entry: log("+Y")})
	m := MustModel("p", nil, r)
	_ = m.Start()
	trace = nil
	dispatch(t, m, "next")
	want := "-X,+Y"
	if got := strings.Join(trace, ","); got != want {
		t.Fatalf("trace = %s, want %s (parent must not exit)", got, want)
	}
}

func TestAncestorTransitionAndLeafPriority(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "P", Initial: "X",
		Transitions: []Transition{{Event: "e", Target: "Q"}}})
	r.Add(&State{Name: "X", Parent: "P",
		Transitions: []Transition{{Event: "e", Target: "Y"}}})
	r.Add(&State{Name: "Y", Parent: "P"})
	r.Add(&State{Name: "Q"})
	m := MustModel("prio", nil, r)
	_ = m.Start()
	dispatch(t, m, "e")
	if cur := m.Region("r").Current(); cur != "Y" {
		t.Fatalf("leaf transition should win; current = %q", cur)
	}
	dispatch(t, m, "e") // now only ancestor P has `e`
	if cur := m.Region("r").Current(); cur != "Q" {
		t.Fatalf("ancestor transition should fire from Y; current = %q", cur)
	}
}

func TestGuardsAndActions(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "idle", Transitions: []Transition{
		{Event: "vol", Guard: func(c *Context) bool { v, _ := c.Event.Get("delta"); return v > 0 },
			Action: func(c *Context) { c.Set("vol", c.Get("vol")+1) }},
		{Event: "vol", Guard: func(c *Context) bool { v, _ := c.Event.Get("delta"); return v < 0 },
			Action: func(c *Context) { c.Set("vol", c.Get("vol")-1) }},
	}})
	m := MustModel("g", nil, r)
	_ = m.Start()
	up := event.Event{Name: "vol"}.With("delta", 1)
	down := event.Event{Name: "vol"}.With("delta", -1)
	for i := 0; i < 3; i++ {
		if err := m.Dispatch(up); err != nil {
			t.Fatal(err)
		}
	}
	_ = m.Dispatch(down)
	if m.Var("vol") != 2 {
		t.Fatalf("vol = %v, want 2", m.Var("vol"))
	}
}

func TestInternalTransitionNoExitEntry(t *testing.T) {
	entries := 0
	r := NewRegion("r")
	r.Add(&State{Name: "s",
		Entry: func(*Context) { entries++ },
		Transitions: []Transition{
			{Event: "tick", Action: func(c *Context) { c.Set("n", c.Get("n")+1) }},
		}})
	m := MustModel("i", nil, r)
	_ = m.Start()
	dispatch(t, m, "tick")
	dispatch(t, m, "tick")
	if entries != 1 {
		t.Fatalf("entries = %d, want 1 (internal transitions must not re-enter)", entries)
	}
	if m.Var("n") != 2 {
		t.Fatalf("n = %v, want 2", m.Var("n"))
	}
}

func TestCompletionTransitions(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Event: "go", Target: "b"}}})
	r.Add(&State{Name: "b", Transitions: []Transition{{Target: "c"}}}) // completion
	r.Add(&State{Name: "c"})
	m := MustModel("c", nil, r)
	_ = m.Start()
	dispatch(t, m, "go")
	if cur := m.Region("r").Current(); cur != "c" {
		t.Fatalf("completion transition should chain to c; current = %q", cur)
	}
}

func TestCompletionLivelockPanics(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a", Transitions: []Transition{{Target: "b"}}})
	r.Add(&State{Name: "b", Transitions: []Transition{{Target: "a"}}})
	m := MustModel("live", nil, r)
	defer func() {
		if recover() == nil {
			t.Fatal("expected livelock panic")
		}
	}()
	_ = m.Start()
}

func TestTimedTransition(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRegion("r")
	r.Add(&State{Name: "armed", Transitions: []Transition{
		{After: 100, Target: "fired"},
		{Event: "cancel", Target: "safe"},
	}})
	r.Add(&State{Name: "fired"})
	r.Add(&State{Name: "safe"})
	m := MustModel("t", k, r)
	_ = m.Start()
	k.Run(99)
	if cur := m.Region("r").Current(); cur != "armed" {
		t.Fatalf("too early: %q", cur)
	}
	k.Run(100)
	if cur := m.Region("r").Current(); cur != "fired" {
		t.Fatalf("after 100: %q, want fired", cur)
	}
}

func TestTimedTransitionCancelledByExit(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRegion("r")
	r.Add(&State{Name: "armed", Transitions: []Transition{
		{After: 100, Target: "fired"},
		{Event: "cancel", Target: "safe"},
	}})
	r.Add(&State{Name: "fired"})
	r.Add(&State{Name: "safe"})
	m := MustModel("t2", k, r)
	_ = m.Start()
	k.Run(50)
	dispatch(t, m, "cancel")
	k.RunAll()
	if cur := m.Region("r").Current(); cur != "safe" {
		t.Fatalf("timer should have been cancelled; current = %q", cur)
	}
}

func TestTimedTransitionRearmOnReentry(t *testing.T) {
	k := sim.NewKernel(1)
	r := NewRegion("r")
	count := 0
	r.Add(&State{Name: "s", Transitions: []Transition{
		{After: 10, Target: "s", Action: func(*Context) { count++ }},
	}})
	m := MustModel("t3", k, r)
	_ = m.Start()
	k.Run(35)
	if count != 3 {
		t.Fatalf("self timed transition fired %d times in 35, want 3", count)
	}
}

func TestParallelRegionsSharedVars(t *testing.T) {
	audio := NewRegion("audio")
	audio.Add(&State{Name: "unmuted", Transitions: []Transition{{Event: "mute", Target: "muted",
		Action: func(c *Context) { c.Set("muted", 1) }}}})
	audio.Add(&State{Name: "muted", Transitions: []Transition{{Event: "mute", Target: "unmuted",
		Action: func(c *Context) { c.Set("muted", 0) }}}})
	screen := NewRegion("screen")
	screen.Add(&State{Name: "single", Transitions: []Transition{{Event: "dual", Target: "dualS"}}})
	screen.Add(&State{Name: "dualS", Transitions: []Transition{{Event: "dual", Target: "single"}}})
	m := MustModel("tv", nil, audio, screen)
	_ = m.Start()
	dispatch(t, m, "mute")
	dispatch(t, m, "dual")
	if m.Region("audio").Current() != "muted" || m.Region("screen").Current() != "dualS" {
		t.Fatalf("config = %v", m.Config())
	}
	if m.Var("muted") != 1 {
		t.Fatal("shared var not visible")
	}
}

func TestInvariantViolationReported(t *testing.T) {
	m := toggleModel(t, nil)
	m.AddInvariant("never-on", func(m *Model) bool { return m.Var("on") == 0 })
	err := m.Dispatch(event.Event{Name: "power"})
	if err == nil {
		t.Fatal("expected invariant violation")
	}
	ie, ok := err.(*ErrInvariant)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ie.Invariant != "never-on" {
		t.Fatalf("invariant = %q", ie.Invariant)
	}
}

func TestEmitOutput(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "s", Transitions: []Transition{
		{Event: "key", Action: func(c *Context) { c.Emit("beep", event.Value{Name: "vol", V: 3}) }},
	}})
	m := MustModel("e", nil, r)
	var got []event.Event
	m.OnOutput(func(e event.Event) { got = append(got, e) })
	_ = m.Start()
	dispatch(t, m, "key")
	if len(got) != 1 || got[0].Name != "beep" {
		t.Fatalf("outputs = %v", got)
	}
	if v, _ := got[0].Get("vol"); v != 3 {
		t.Fatal("payload lost")
	}
}

func TestValidation(t *testing.T) {
	cases := []struct {
		name  string
		build func() *Region
	}{
		{"undefined target", func() *Region {
			r := NewRegion("r")
			r.Add(&State{Name: "a", Transitions: []Transition{{Event: "e", Target: "nope"}}})
			return r
		}},
		{"undefined parent", func() *Region {
			r := NewRegion("r")
			r.Add(&State{Name: "a", Parent: "ghost"})
			r.Add(&State{Name: "top"})
			return r
		}},
		{"initial child wrong parent", func() *Region {
			r := NewRegion("r")
			r.Add(&State{Name: "a", Initial: "b"})
			r.Add(&State{Name: "b"})
			return r
		}},
		{"empty region", func() *Region { return NewRegion("r") }},
	}
	for _, tc := range cases {
		if _, err := NewModel("m", nil, tc.build()); err == nil {
			t.Errorf("%s: expected validation error", tc.name)
		}
	}
}

func TestAddPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("duplicate", func() {
		r := NewRegion("r")
		r.Add(&State{Name: "a"})
		r.Add(&State{Name: "a"})
	})
	mustPanic("unnamed", func() { NewRegion("r").Add(&State{}) })
	mustPanic("timed+event", func() {
		NewRegion("r").Add(&State{Name: "a", Transitions: []Transition{{Event: "e", After: 5, Target: "a"}}})
	})
}

func TestDispatchBeforeStart(t *testing.T) {
	r := NewRegion("r")
	r.Add(&State{Name: "a"})
	m := MustModel("m", nil, r)
	if err := m.Dispatch(event.Event{Name: "e"}); err == nil {
		t.Fatal("Dispatch before Start should error")
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err == nil {
		t.Fatal("double Start should error")
	}
}

func TestRunScript(t *testing.T) {
	m := toggleModel(t, nil)
	fails := m.RunScript(Script{Name: "ok", Steps: []ScriptStep{
		{ExpectState: map[string]string{"power": "off"}},
		{Event: "power", ExpectState: map[string]string{"power": "on"}, ExpectVars: map[string]float64{"on": 1}},
		{Event: "power", ExpectVars: map[string]float64{"on": 0}},
	}})
	if len(fails) != 0 {
		t.Fatalf("unexpected failures: %v", fails)
	}
	m2 := toggleModel(t, nil)
	fails = m2.RunScript(Script{Name: "bad", Steps: []ScriptStep{
		{Event: "power", ExpectState: map[string]string{"power": "off"}},
		{Event: "power", ExpectVars: map[string]float64{"on": 42}},
		{ExpectState: map[string]string{"ghost": "x"}},
	}})
	if len(fails) != 3 {
		t.Fatalf("failures = %v, want 3", fails)
	}
	if fails[0].Error() == "" {
		t.Fatal("failure should render")
	}
}
