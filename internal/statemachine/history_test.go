package statemachine

import (
	"testing"

	"trader/internal/event"
)

// menuModel: a settings menu with shallow history — leaving and re-entering
// the menu resumes the last visited page (the standard TV OSD behaviour).
func menuModel(t *testing.T, history bool) *Model {
	t.Helper()
	r := NewRegion("ui")
	r.Add(&State{Name: "watch", Transitions: []Transition{
		{Event: "menu", Target: "menuS"},
	}})
	r.Add(&State{Name: "menuS", Initial: "picture", History: history, Transitions: []Transition{
		{Event: "menu", Target: "watch"},
	}})
	r.Add(&State{Name: "picture", Parent: "menuS", Transitions: []Transition{
		{Event: "next", Target: "sound"},
	}})
	r.Add(&State{Name: "sound", Parent: "menuS", Transitions: []Transition{
		{Event: "next", Target: "network"},
	}})
	r.Add(&State{Name: "network", Parent: "menuS"})
	m := MustModel("menu", nil, r)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestShallowHistoryResumesLastPage(t *testing.T) {
	m := menuModel(t, true)
	send := func(name string) {
		if err := m.Dispatch(event.Event{Name: name}); err != nil {
			t.Fatal(err)
		}
	}
	send("menu") // open → picture
	send("next") // → sound
	send("menu") // close
	if cur := m.Region("ui").Current(); cur != "watch" {
		t.Fatalf("current = %q", cur)
	}
	send("menu") // reopen: history resumes "sound"
	if cur := m.Region("ui").Current(); cur != "sound" {
		t.Fatalf("history re-entry = %q, want sound", cur)
	}
}

func TestNoHistoryRestartsAtInitial(t *testing.T) {
	m := menuModel(t, false)
	send := func(name string) { _ = m.Dispatch(event.Event{Name: name}) }
	send("menu")
	send("next")
	send("menu")
	send("menu")
	if cur := m.Region("ui").Current(); cur != "picture" {
		t.Fatalf("non-history re-entry = %q, want picture", cur)
	}
}

func TestHistoryIsPartOfExploredState(t *testing.T) {
	// With history, "watch" is reachable with three distinct resume
	// targets, so exploration must see more states than without.
	with := menuModel(t, true).Explore(ExploreOptions{Alphabet: []string{"menu", "next"}})
	without := menuModel(t, false).Explore(ExploreOptions{Alphabet: []string{"menu", "next"}})
	if with.StatesVisited <= without.StatesVisited {
		t.Fatalf("history states not distinguished: with=%d without=%d",
			with.StatesVisited, without.StatesVisited)
	}
	if len(with.Unreachable) != 0 || len(without.Unreachable) != 0 {
		t.Fatalf("unreachable: %v / %v", with.Unreachable, without.Unreachable)
	}
}

func TestHistorySurvivesSnapshotRestore(t *testing.T) {
	m := menuModel(t, true)
	send := func(name string) { _ = m.Dispatch(event.Event{Name: name}) }
	send("menu")
	send("next") // in sound
	snap := m.CaptureState()
	send("next") // in network
	send("menu") // close (history = network)
	m.RestoreState(snap)
	send("menu") // close from restored "sound"
	send("menu") // reopen: must resume sound, not network
	if cur := m.Region("ui").Current(); cur != "sound" {
		t.Fatalf("restored history re-entry = %q, want sound", cur)
	}
}
