package statemachine

import (
	"fmt"
	"sort"
	"strings"

	"trader/internal/event"
)

// Exploration implements the paper's Sect. 4.2 observation that model quality
// needs checking: "we investigate the possibilities of formal model-checking
// and test scripts to improve model quality". Explore performs bounded
// explicit-state reachability over a finite event alphabet, reporting
// invariant violations, nondeterministic choices, deadlocked configurations
// and states that were never reached.
//
// Exploration is exact for models whose variables take finitely many values
// under the given alphabet (the usual case for control models); it hashes the
// full variable valuation, so continuously-valued models may not terminate
// within the bound.

// ExploreOptions configures Explore.
type ExploreOptions struct {
	// Alphabet is the set of input event names to try in every state.
	Alphabet []string
	// MaxDepth bounds the BFS depth (number of events); 0 means 64.
	MaxDepth int
	// MaxStates bounds the number of distinct states visited; 0 means 100000.
	MaxStates int
}

// Violation is one model-quality finding.
type Violation struct {
	Kind   string   // "invariant", "nondeterminism", "deadlock", "livelock"
	Detail string   // human-readable description
	Trace  []string // event sequence from the initial state
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s (trace: %s)", v.Kind, v.Detail, strings.Join(v.Trace, " "))
}

// ExploreResult summarises an exploration run.
type ExploreResult struct {
	StatesVisited int
	Transitions   int
	Truncated     bool // hit MaxStates or MaxDepth
	Violations    []Violation
	// Unreachable lists states (region/state) never part of any visited
	// configuration, a common modelling error.
	Unreachable []string
}

// Snapshot captures the mutable model state: per-region current leaf,
// per-region shallow history (which determines future entry targets and is
// therefore part of the explored state space), and the shared variable
// scope. Exploration uses it to walk the state graph; checkpoint restore
// (internal/core) uses it to place a freshly built model back at a captured
// configuration.
type Snapshot struct {
	Current map[string]string
	History map[string]map[string]string
	Vars    map[string]float64
}

// CaptureState copies the model's mutable state into a Snapshot.
func (m *Model) CaptureState() Snapshot {
	s := Snapshot{
		Current: make(map[string]string, len(m.regions)),
		History: make(map[string]map[string]string, len(m.regions)),
		Vars:    make(map[string]float64, len(m.vars)),
	}
	for _, r := range m.regions {
		s.Current[r.Name] = r.current
		h := make(map[string]string, len(r.lastChild))
		for k, v := range r.lastChild {
			h[k] = v
		}
		s.History[r.Name] = h
	}
	for k, v := range m.vars {
		s.Vars[k] = v
	}
	return s
}

// RestoreState writes a Snapshot back into the model: current leaves,
// shallow history and variables, without running entry/exit actions (the
// snapshot already reflects their effects). Timers armed for states that
// are no longer current self-suppress when they fire (they check the active
// configuration); timers the restored states would have armed are not
// re-created, so restore fidelity for timed transitions is limited to the
// uniform re-anchoring of already-armed timers.
func (m *Model) RestoreState(s Snapshot) {
	for _, r := range m.regions {
		r.current = s.Current[r.Name]
		r.lastChild = make(map[string]string, len(s.History[r.Name]))
		for k, v := range s.History[r.Name] {
			r.lastChild[k] = v
		}
	}
	m.vars = make(map[string]float64, len(s.Vars))
	for k, v := range s.Vars {
		m.vars[k] = v
	}
}

func (s Snapshot) key() string {
	var b strings.Builder
	regs := make([]string, 0, len(s.Current))
	for r := range s.Current {
		regs = append(regs, r)
	}
	sort.Strings(regs)
	for _, r := range regs {
		fmt.Fprintf(&b, "%s=%s;", r, s.Current[r])
		hs := make([]string, 0, len(s.History[r]))
		for p, c := range s.History[r] {
			hs = append(hs, p+">"+c)
		}
		sort.Strings(hs)
		for _, h := range hs {
			fmt.Fprintf(&b, "h:%s;", h)
		}
	}
	vars := make([]string, 0, len(s.Vars))
	for v := range s.Vars {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		fmt.Fprintf(&b, "%s=%g;", v, s.Vars[v])
	}
	return b.String()
}

// enabledNondet returns a description of nondeterministic choice in region r
// for event name ev at the current configuration, or "".
func (m *Model) enabledNondet(r *Region, evName string) string {
	if r.current == "" {
		return ""
	}
	p := r.path(r.current)
	for depth := len(p) - 1; depth >= 0; depth-- {
		s := r.states[p[depth]]
		var enabled int
		for i := range s.Transitions {
			tr := &s.Transitions[i]
			if tr.After > 0 || tr.Event != evName {
				continue
			}
			ctx := m.ctx(eventNamed(evName))
			if tr.Guard == nil || tr.Guard(ctx) {
				enabled++
			}
		}
		if enabled > 1 {
			return fmt.Sprintf("region %q state %q: %d transitions enabled for event %q", r.Name, p[depth], enabled, evName)
		}
		if enabled == 1 {
			return "" // deterministic choice found at this priority level
		}
	}
	return ""
}

// timedEnabled lists indices of timed transitions enabled along the current
// path of r (source state name + transition copy).
func (m *Model) timedEnabled(r *Region) []struct {
	src string
	tr  Transition
} {
	var out []struct {
		src string
		tr  Transition
	}
	if r.current == "" {
		return out
	}
	for _, name := range r.path(r.current) {
		s := r.states[name]
		for i := range s.Transitions {
			tr := s.Transitions[i]
			if tr.After <= 0 {
				continue
			}
			ctx := m.ctx(eventNamed(""))
			if tr.Guard == nil || tr.Guard(ctx) {
				out = append(out, struct {
					src string
					tr  Transition
				}{name, tr})
			}
		}
	}
	return out
}

// applyTimed fires a timed transition during exploration (no kernel).
func (m *Model) applyTimed(r *Region, src string, tr Transition) {
	p := r.path(r.current)
	depth := -1
	for i, n := range p {
		if n == src {
			depth = i
		}
	}
	if depth < 0 {
		return
	}
	m.fire(r, depth, tr, eventNamed(""))
	m.settle()
}

func eventNamed(name string) (e event.Event) {
	e.Name = name
	return
}

// Explore runs bounded BFS from the model's current state. The model must be
// started. The model state is restored to its pre-exploration snapshot before
// Explore returns.
func (m *Model) Explore(opts ExploreOptions) ExploreResult {
	if opts.MaxDepth == 0 {
		opts.MaxDepth = 64
	}
	if opts.MaxStates == 0 {
		opts.MaxStates = 100000
	}
	origin := m.CaptureState()
	defer m.RestoreState(origin)

	res := ExploreResult{}
	type node struct {
		s     Snapshot
		trace []string
		depth int
	}
	visited := map[string]bool{origin.key(): true}
	visitedConfigs := map[string]bool{}
	markConfig := func(s Snapshot) {
		for reg, leaf := range s.Current {
			r := m.Region(reg)
			for _, st := range r.path(leaf) {
				visitedConfigs[reg+"/"+st] = true
			}
		}
	}
	markConfig(origin)
	res.StatesVisited = 1

	queue := []node{{s: origin, depth: 0}}
	reportedNondet := map[string]bool{}

	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n.depth >= opts.MaxDepth {
			res.Truncated = true
			continue
		}

		// Successor generators: one per alphabet event, plus one per enabled
		// timed transition.
		type succ struct {
			label string
			apply func() error
		}
		var succs []succ
		m.RestoreState(n.s)
		for _, evName := range opts.Alphabet {
			evName := evName
			// Nondeterminism check in this configuration.
			for _, r := range m.regions {
				if msg := m.enabledNondet(r, evName); msg != "" {
					k := msg
					if !reportedNondet[k] {
						reportedNondet[k] = true
						res.Violations = append(res.Violations, Violation{
							Kind: "nondeterminism", Detail: msg, Trace: append(append([]string{}, n.trace...), evName),
						})
					}
				}
			}
			succs = append(succs, succ{label: evName, apply: func() error {
				return m.Dispatch(eventNamed(evName))
			}})
		}
		for _, r := range m.regions {
			r := r
			for _, te := range m.timedEnabled(r) {
				te := te
				succs = append(succs, succ{
					label: fmt.Sprintf("after(%s)@%s", te.tr.After, te.src),
					apply: func() error {
						m.applyTimed(r, te.src, te.tr)
						return m.checkInvariants()
					},
				})
			}
		}

		progressed := false
		for _, sc := range succs {
			m.RestoreState(n.s)
			err := sc.apply()
			res.Transitions++
			next := m.CaptureState()
			trace := append(append([]string{}, n.trace...), sc.label)
			if err != nil {
				res.Violations = append(res.Violations, Violation{
					Kind: "invariant", Detail: err.Error(), Trace: trace,
				})
				continue
			}
			k := next.key()
			if k != n.s.key() {
				progressed = true
			}
			if visited[k] {
				continue
			}
			visited[k] = true
			markConfig(next)
			res.StatesVisited++
			if res.StatesVisited >= opts.MaxStates {
				res.Truncated = true
				return finishExplore(m, res, visitedConfigs)
			}
			queue = append(queue, node{s: next, trace: trace, depth: n.depth + 1})
		}
		if !progressed && len(succs) > 0 {
			res.Violations = append(res.Violations, Violation{
				Kind: "deadlock", Detail: fmt.Sprintf("no event changes state in config %v", n.s.Current), Trace: n.trace,
			})
		}
	}
	return finishExplore(m, res, visitedConfigs)
}

func finishExplore(m *Model, res ExploreResult, visitedConfigs map[string]bool) ExploreResult {
	for _, r := range m.regions {
		names := make([]string, 0, len(r.states))
		for n := range r.states {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if !visitedConfigs[r.Name+"/"+n] {
				res.Unreachable = append(res.Unreachable, r.Name+"/"+n)
			}
		}
	}
	sort.Strings(res.Unreachable)
	return res
}
