package statemachine

import (
	"testing"
	"testing/quick"

	"trader/internal/event"
)

// randomModel builds a small machine whose transition structure is derived
// from the seed bytes, with only valid targets — used to fuzz the engine.
func randomModel(structure []uint8) *Model {
	r := NewRegion("r")
	const nStates = 5
	names := []string{"s0", "s1", "s2", "s3", "s4"}
	events := []string{"e0", "e1", "e2"}
	type edge struct {
		from, to, ev int
	}
	var edges []edge
	for i := 0; i+2 < len(structure) && len(edges) < 12; i += 3 {
		edges = append(edges, edge{
			from: int(structure[i]) % nStates,
			to:   int(structure[i+1]) % nStates,
			ev:   int(structure[i+2]) % len(events),
		})
	}
	trs := make([][]Transition, nStates)
	for _, e := range edges {
		e := e
		trs[e.from] = append(trs[e.from], Transition{
			Event:  events[e.ev],
			Target: names[e.to],
			Action: func(c *Context) { c.Set("steps", c.Get("steps")+1) },
		})
	}
	for i, n := range names {
		r.Add(&State{Name: n, Transitions: trs[i]})
	}
	return MustModel("fuzz", nil, r)
}

// Property: for any machine shape and any event sequence, the current state
// is always one of the defined states and Dispatch never errors (no
// invariants registered) or panics.
func TestPropertyDispatchTotal(t *testing.T) {
	f := func(structure []uint8, inputs []uint8) bool {
		m := randomModel(structure)
		if err := m.Start(); err != nil {
			return false
		}
		valid := map[string]bool{"s0": true, "s1": true, "s2": true, "s3": true, "s4": true}
		for i, in := range inputs {
			if i >= 200 {
				break
			}
			ev := event.Event{Kind: event.Input, Name: []string{"e0", "e1", "e2", "zzz"}[int(in)%4]}
			if err := m.Dispatch(ev); err != nil {
				return false
			}
			if !valid[m.Region("r").Current()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: snapshot/restore (the exploration mechanism) round-trips: after
// arbitrary steps, restoring the initial snapshot returns the exact initial
// configuration and variables.
func TestPropertySnapshotRestore(t *testing.T) {
	f := func(structure []uint8, inputs []uint8) bool {
		m := randomModel(structure)
		if err := m.Start(); err != nil {
			return false
		}
		before := m.CaptureState()
		beforeKey := before.key()
		for i, in := range inputs {
			if i >= 50 {
				break
			}
			_ = m.Dispatch(event.Event{Name: []string{"e0", "e1", "e2"}[int(in)%3]})
		}
		m.RestoreState(before)
		return m.CaptureState().key() == beforeKey
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: exploration visits at least the states reachable by any
// concrete random walk (soundness of the reachability analysis).
func TestPropertyExploreCoversRandomWalks(t *testing.T) {
	f := func(structure []uint8, inputs []uint8) bool {
		m := randomModel(structure)
		if err := m.Start(); err != nil {
			return false
		}
		res := m.Explore(ExploreOptions{Alphabet: []string{"e0", "e1", "e2"}, MaxDepth: 30})
		unreachable := map[string]bool{}
		for _, u := range res.Unreachable {
			unreachable[u] = true
		}
		// Walk concretely; no state on the walk may be "unreachable".
		m2 := randomModel(structure)
		if err := m2.Start(); err != nil {
			return false
		}
		for i, in := range inputs {
			if i >= 30 {
				break
			}
			_ = m2.Dispatch(event.Event{Name: []string{"e0", "e1", "e2"}[int(in)%3]})
			if unreachable["r/"+m2.Region("r").Current()] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
