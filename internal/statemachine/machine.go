// Package statemachine implements executable timed hierarchical state
// machines, the modelling formalism the Trader paper uses for specification
// models of desired system behaviour (Sect. 4.2). It replaces the
// Matlab/Stateflow tooling of the paper with a stdlib-only engine that
// supports:
//
//   - hierarchical states with entry/exit actions and initial children,
//   - guarded, triggered transitions with actions,
//   - timed ("after") transitions driven by a sim.Kernel,
//   - parallel top-level regions sharing a variable scope,
//   - observation hooks (used by the awareness framework's Model Executor),
//   - bounded explicit-state exploration for model-quality checks
//     (reachability, nondeterminism, invariant violations, deadlock), and
//   - a test-script runner.
package statemachine

import (
	"fmt"
	"sort"

	"trader/internal/event"
	"trader/internal/sim"
)

// Context is passed to guards and actions. Vars is the shared variable scope
// of the whole model; Event is the triggering event (zero for timed and
// completion transitions).
type Context struct {
	Vars  map[string]float64
	Event event.Event
	Now   sim.Time
	emit  func(name string, values []event.Value)
}

// Get returns a variable (0 if unset).
func (c *Context) Get(name string) float64 { return c.Vars[name] }

// Set assigns a variable.
func (c *Context) Set(name string, v float64) { c.Vars[name] = v }

// SetBool assigns 1/0.
func (c *Context) SetBool(name string, b bool) {
	if b {
		c.Vars[name] = 1
	} else {
		c.Vars[name] = 0
	}
}

// Bool reads a variable as a boolean (non-zero = true).
func (c *Context) Bool(name string) bool { return c.Vars[name] != 0 }

// Emit publishes a model output event (expected behaviour).
func (c *Context) Emit(name string, values ...event.Value) {
	if c.emit != nil {
		c.emit(name, values)
	}
}

// Transition is an edge of the machine.
type Transition struct {
	// Event is the trigger name. Empty means a completion transition,
	// evaluated after every dispatch and on entry, unless After is set.
	Event string
	// After, when positive, makes this a timed transition firing After
	// after the source state was entered (unless the state is left first).
	// Timed transitions must have an empty Event.
	After sim.Time
	// Guard, when non-nil, must return true for the transition to fire.
	Guard func(*Context) bool
	// Target is the destination state name. Empty denotes an internal
	// transition: the action runs without exiting the source state.
	Target string
	// Action runs between exit and entry actions.
	Action func(*Context)
}

// State is a node of the hierarchy.
type State struct {
	Name string
	// Parent is the name of the enclosing state; empty for top-level.
	Parent string
	// Initial is the name of the child entered by default; empty for leaves.
	Initial string
	// History marks a shallow-history composite state (Stateflow "H"): when
	// re-entered, the child that was active on the last exit is entered
	// instead of Initial.
	History     bool
	Entry       func(*Context)
	Exit        func(*Context)
	Transitions []Transition
}

// Region is one sequential state machine. Build it with NewRegion/Add, then
// include it in a Model.
type Region struct {
	Name    string
	states  map[string]*State
	tops    []string // top-level states in Add order
	initial string
	current string // current leaf state; "" before Start
	// lastChild remembers, per composite state, the child active at the
	// last exit (shallow history).
	lastChild map[string]string
	timers    []*sim.Event
	model     *Model
}

// NewRegion creates an empty region.
func NewRegion(name string) *Region {
	return &Region{
		Name:      name,
		states:    make(map[string]*State),
		lastChild: make(map[string]string),
	}
}

// Add inserts a state. The first top-level state added becomes the region's
// initial state unless SetInitial overrides it. Add panics on duplicate or
// invalid definitions so model bugs surface at construction time.
func (r *Region) Add(s *State) *Region {
	if s.Name == "" {
		panic("statemachine: state needs a name")
	}
	if _, dup := r.states[s.Name]; dup {
		panic(fmt.Sprintf("statemachine: duplicate state %q", s.Name))
	}
	for _, tr := range s.Transitions {
		if tr.After > 0 && tr.Event != "" {
			panic(fmt.Sprintf("statemachine: state %q: timed transition cannot also have an event trigger", s.Name))
		}
	}
	cp := *s
	r.states[s.Name] = &cp
	if s.Parent == "" {
		r.tops = append(r.tops, s.Name)
		if r.initial == "" {
			r.initial = s.Name
		}
	}
	return r
}

// SetInitial overrides the region's initial top-level state.
func (r *Region) SetInitial(name string) *Region {
	r.initial = name
	return r
}

// Current returns the current leaf state name ("" before Start).
func (r *Region) Current() string { return r.current }

// In reports whether the configuration includes the named state (the current
// leaf or any of its ancestors).
func (r *Region) In(name string) bool {
	for s := r.current; s != ""; {
		if s == name {
			return true
		}
		st, ok := r.states[s]
		if !ok {
			return false
		}
		s = st.Parent
	}
	return false
}

// validate checks referential integrity; returns all problems found.
func (r *Region) validate() []error {
	var errs []error
	if len(r.tops) == 0 {
		errs = append(errs, fmt.Errorf("region %q: no top-level states", r.Name))
	}
	if r.initial != "" {
		if _, ok := r.states[r.initial]; !ok {
			errs = append(errs, fmt.Errorf("region %q: initial state %q undefined", r.Name, r.initial))
		}
	}
	names := make([]string, 0, len(r.states))
	for n := range r.states {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		s := r.states[n]
		if s.Parent != "" {
			if _, ok := r.states[s.Parent]; !ok {
				errs = append(errs, fmt.Errorf("region %q: state %q: parent %q undefined", r.Name, n, s.Parent))
			}
		}
		if s.Initial != "" {
			child, ok := r.states[s.Initial]
			if !ok {
				errs = append(errs, fmt.Errorf("region %q: state %q: initial child %q undefined", r.Name, n, s.Initial))
			} else if child.Parent != s.Name {
				errs = append(errs, fmt.Errorf("region %q: state %q: initial child %q has parent %q", r.Name, n, s.Initial, child.Parent))
			}
		}
		for i, tr := range s.Transitions {
			if tr.Target != "" {
				if _, ok := r.states[tr.Target]; !ok {
					errs = append(errs, fmt.Errorf("region %q: state %q: transition %d targets undefined state %q", r.Name, n, i, tr.Target))
				}
			}
		}
		// Cycle check on parent chain.
		seen := map[string]bool{}
		for p := s.Parent; p != ""; {
			if seen[p] {
				errs = append(errs, fmt.Errorf("region %q: state %q: parent cycle", r.Name, n))
				break
			}
			seen[p] = true
			ps, ok := r.states[p]
			if !ok {
				break
			}
			p = ps.Parent
		}
	}
	return errs
}

// leafOf descends to the default leaf of s: through the remembered child
// for shallow-history states, through Initial otherwise.
func (r *Region) leafOf(name string) string {
	for {
		s := r.states[name]
		if s == nil {
			return name
		}
		next := s.Initial
		if s.History {
			if h, ok := r.lastChild[name]; ok {
				next = h
			}
		}
		if next == "" {
			return name
		}
		name = next
	}
}

// path returns the ancestor chain of name from top-level down to name.
func (r *Region) path(name string) []string {
	var rev []string
	for n := name; n != ""; {
		rev = append(rev, n)
		s := r.states[n]
		if s == nil {
			break
		}
		n = s.Parent
	}
	out := make([]string, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

// enter walks entry actions from the deepest already-active ancestor down to
// the default leaf of target, arming timers on each entered state.
func (r *Region) enter(target string, ctx *Context, fromDepth int) {
	leaf := r.leafOf(target)
	p := r.path(leaf)
	for i := fromDepth; i < len(p); i++ {
		s := r.states[p[i]]
		if s.Entry != nil {
			s.Entry(ctx)
		}
		r.armTimers(p[i])
	}
	r.current = leaf
	if r.model != nil && r.model.onConfig != nil {
		r.model.onConfig(r.Name, leaf)
	}
}

// exitTo runs exit actions from the current leaf up to (not including) the
// state at depth keepDepth in the current path, recording shallow history.
func (r *Region) exitTo(keepDepth int, ctx *Context) {
	p := r.path(r.current)
	for i := len(p) - 1; i >= keepDepth; i-- {
		s := r.states[p[i]]
		// Record shallow history only where it changes behaviour, so the
		// exploration state space is not inflated by inert bookkeeping.
		if i > 0 && r.states[p[i-1]].History {
			r.lastChild[p[i-1]] = p[i]
		}
		if s.Exit != nil {
			s.Exit(ctx)
		}
	}
}

// armTimers schedules the After transitions of the named state.
func (r *Region) armTimers(name string) {
	if r.model == nil || r.model.kernel == nil {
		return
	}
	s := r.states[name]
	for i := range s.Transitions {
		tr := &s.Transitions[i]
		if tr.After <= 0 {
			continue
		}
		src, trCopy := name, *tr
		ev := r.model.kernel.Schedule(tr.After, func() {
			// Fire only if src is still in the active configuration.
			if !r.In(src) {
				return
			}
			r.model.fireTimed(r, src, trCopy)
		})
		r.timers = append(r.timers, ev)
	}
}

func (r *Region) cancelTimers() {
	for _, t := range r.timers {
		t.Cancel()
	}
	r.timers = r.timers[:0]
}

// Model is a set of parallel regions over one shared variable scope — the
// executable specification model.
type Model struct {
	Name    string
	regions []*Region
	vars    map[string]float64
	kernel  *sim.Kernel

	// hooks
	onConfig func(region, leaf string)
	onOutput func(e event.Event)

	invariants []Invariant
	seq        uint64
	started    bool
}

// Invariant is a named predicate over the model state that must always hold.
type Invariant struct {
	Name string
	Pred func(m *Model) bool
}

// NewModel builds a model from regions. kernel may be nil when the model is
// used without timed transitions (e.g. during exploration).
func NewModel(name string, kernel *sim.Kernel, regions ...*Region) (*Model, error) {
	m := &Model{Name: name, kernel: kernel, vars: make(map[string]float64)}
	var errs []error
	seen := map[string]bool{}
	for _, r := range regions {
		if seen[r.Name] {
			errs = append(errs, fmt.Errorf("duplicate region %q", r.Name))
		}
		seen[r.Name] = true
		errs = append(errs, r.validate()...)
		r.model = m
		m.regions = append(m.regions, r)
	}
	if len(regions) == 0 {
		errs = append(errs, fmt.Errorf("model %q: no regions", name))
	}
	if len(errs) > 0 {
		return nil, fmt.Errorf("statemachine: invalid model %q: %v", name, errs)
	}
	return m, nil
}

// MustModel is NewModel that panics on error; for statically-known models.
func MustModel(name string, kernel *sim.Kernel, regions ...*Region) *Model {
	m, err := NewModel(name, kernel, regions...)
	if err != nil {
		panic(err)
	}
	return m
}

// AddInvariant registers an always-true predicate, checked after every step
// during Run/Dispatch and during exploration.
func (m *Model) AddInvariant(name string, pred func(m *Model) bool) {
	m.invariants = append(m.invariants, Invariant{name, pred})
}

// OnConfig registers a hook called whenever a region changes leaf state.
func (m *Model) OnConfig(fn func(region, leaf string)) { m.onConfig = fn }

// OnOutput registers a hook receiving events emitted by model actions.
func (m *Model) OnOutput(fn func(e event.Event)) { m.onOutput = fn }

// Var reads a model variable.
func (m *Model) Var(name string) float64 { return m.vars[name] }

// SetVar writes a model variable (for test setup and exploration seeding).
func (m *Model) SetVar(name string, v float64) { m.vars[name] = v }

// Vars returns the live variable map (callers must not retain across steps).
func (m *Model) Vars() map[string]float64 { return m.vars }

// Region returns the named region, or nil.
func (m *Model) Region(name string) *Region {
	for _, r := range m.regions {
		if r.Name == name {
			return r
		}
	}
	return nil
}

// Regions returns the model's regions in order.
func (m *Model) Regions() []*Region { return m.regions }

func (m *Model) now() sim.Time {
	if m.kernel != nil {
		return m.kernel.Now()
	}
	return 0
}

func (m *Model) ctx(ev event.Event) *Context {
	return &Context{
		Vars:  m.vars,
		Event: ev,
		Now:   m.now(),
		emit: func(name string, values []event.Value) {
			m.seq++
			out := event.Event{
				Kind: event.Output, Name: name, Source: m.Name,
				At: m.now(), Values: values, Seq: m.seq,
			}
			if m.onOutput != nil {
				m.onOutput(out)
			}
		},
	}
}

// Start enters the initial configuration of every region and runs completion
// transitions to quiescence.
func (m *Model) Start() error {
	if m.started {
		return fmt.Errorf("statemachine: model %q already started", m.Name)
	}
	m.started = true
	ctx := m.ctx(event.Event{})
	for _, r := range m.regions {
		r.enter(r.initial, ctx, 0)
	}
	m.settle()
	return m.checkInvariants()
}

// Dispatch feeds one event to every region (broadcast, as in Stateflow
// parallel states), then runs completion transitions to quiescence.
// It returns ErrInvariant if an invariant is violated afterwards.
func (m *Model) Dispatch(ev event.Event) error {
	if !m.started {
		return fmt.Errorf("statemachine: model %q not started", m.Name)
	}
	for _, r := range m.regions {
		m.step(r, ev)
	}
	m.settle()
	return m.checkInvariants()
}

// settle runs completion (eventless, untimed) transitions until none fire.
// A budget guards against livelock in buggy models.
func (m *Model) settle() {
	const budget = 10000
	for i := 0; i < budget; i++ {
		fired := false
		for _, r := range m.regions {
			if m.step(r, event.Event{}) {
				fired = true
			}
		}
		if !fired {
			return
		}
	}
	panic(fmt.Sprintf("statemachine: model %q: completion-transition livelock", m.Name))
}

// step tries to fire one transition in region r for event ev (empty name =
// completion). Leaf transitions take priority over ancestor transitions.
// Returns whether a transition fired.
func (m *Model) step(r *Region, ev event.Event) bool {
	if r.current == "" {
		return false
	}
	p := r.path(r.current)
	for depth := len(p) - 1; depth >= 0; depth-- {
		s := r.states[p[depth]]
		for i := range s.Transitions {
			tr := &s.Transitions[i]
			if tr.After > 0 || tr.Event != ev.Name {
				continue
			}
			ctx := m.ctx(ev)
			if tr.Guard != nil && !tr.Guard(ctx) {
				continue
			}
			m.fire(r, depth, *tr, ev)
			return true
		}
	}
	return false
}

// fireTimed fires a timed transition whose timer expired while src is active.
func (m *Model) fireTimed(r *Region, src string, tr Transition) {
	p := r.path(r.current)
	depth := -1
	for i, n := range p {
		if n == src {
			depth = i
			break
		}
	}
	if depth < 0 {
		return
	}
	ctx := m.ctx(event.Event{})
	if tr.Guard != nil && !tr.Guard(ctx) {
		return
	}
	m.fire(r, depth, tr, event.Event{})
	m.settle()
	if err := m.checkInvariants(); err != nil {
		panic(err)
	}
}

// fire executes one transition sourced at depth in the current path.
func (m *Model) fire(r *Region, depth int, tr Transition, ev event.Event) {
	ctx := m.ctx(ev)
	if tr.Target == "" { // internal transition
		if tr.Action != nil {
			tr.Action(ctx)
		}
		return
	}
	// Compute LCA depth between current path and target path.
	tp := r.path(tr.Target)
	cp := r.path(r.current)
	lca := 0
	for lca < len(tp) && lca < len(cp) && tp[lca] == cp[lca] {
		lca++
	}
	// Self- and descendant-targets re-enter the source: exit to source level.
	if lca > depth {
		lca = depth
	}
	r.cancelTimers()
	r.exitTo(lca, ctx)
	if tr.Action != nil {
		tr.Action(ctx)
	}
	r.enter(tr.Target, ctx, lca)
}

// ErrInvariant reports an invariant violation.
type ErrInvariant struct {
	Model     string
	Invariant string
	Config    map[string]string
}

func (e *ErrInvariant) Error() string {
	return fmt.Sprintf("statemachine: model %q: invariant %q violated in %v", e.Model, e.Invariant, e.Config)
}

func (m *Model) checkInvariants() error {
	for _, inv := range m.invariants {
		if !inv.Pred(m) {
			return &ErrInvariant{Model: m.Name, Invariant: inv.Name, Config: m.Config()}
		}
	}
	return nil
}

// Config returns the current leaf state of every region.
func (m *Model) Config() map[string]string {
	out := make(map[string]string, len(m.regions))
	for _, r := range m.regions {
		out[r.Name] = r.current
	}
	return out
}
