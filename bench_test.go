package trader_test

// One benchmark per experiment of DESIGN.md §4. Each regenerates the
// corresponding figure/claim of the paper; `go test -bench=. -benchmem`
// therefore reproduces the full evaluation. The per-iteration wall time is
// the cost of simulating the whole experiment (tens of virtual seconds of
// TV operation per iteration for the system-level ones).

import (
	"fmt"
	"runtime"
	"testing"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/exper"
	"trader/internal/fleet"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/statemachine"
)

func benchTable(b *testing.B, run func() (*exper.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ClosedLoop(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E1ClosedLoop(1) })
}

// BenchmarkE2FrameworkOverhead measures the monitor's hot path directly:
// one observation through the Output Observer and Comparator.
func BenchmarkE2FrameworkOverhead(b *testing.B) {
	k := sim.NewKernel(1)
	r := statemachine.NewRegion("r")
	r.Add(&statemachine.State{Name: "s", Entry: func(c *statemachine.Context) { c.Set("x", 0) }})
	model := statemachine.MustModel("bench", k, r)
	mon, err := core.NewMonitor(k, model, core.Configuration{Observables: []core.Observable{
		{EventName: "out", ValueName: "x", ModelVar: "x", Threshold: 0.5, Tolerance: 1},
	}})
	if err != nil {
		b.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		b.Fatal(err)
	}
	e := event.Event{Kind: event.Output, Name: "out"}.With("x", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.HandleOutput(e)
	}
}

func BenchmarkE2SocketPath(b *testing.B) {
	// Cross-process framing cost: one event encoded + decoded + compared.
	n := b.N
	b.ResetTimer()
	if _, err := exper.E2SocketThroughput(n); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE3ComparatorTradeoff(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E3ComparatorTradeoff(1) })
}

func BenchmarkE4SpectrumDiagnosis(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E4Diagnosis(42) })
}

// BenchmarkE4RankOnly isolates the ranking computation on the paper-sized
// matrix (60 000 blocks × 27 transactions).
func BenchmarkE4RankOnly(b *testing.B) {
	p := spectrum.GenerateTVProgram(42, 60000)
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(spectrum.PaperScenario(), fault)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(spectrum.Ochiai)
	}
}

func BenchmarkE5ModeConsistency(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E5ModeConsistency(1) })
}

func BenchmarkE6PartialRecovery(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E6Recovery(1) })
}

func BenchmarkE7Migration(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E7Migration(3) })
}

func BenchmarkE8Perception(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E8Perception(42) })
}

func BenchmarkE9StressTest(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E9Stress(9) })
}

func BenchmarkE10WarningPriority(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E10WarningPriority(1) })
}

func BenchmarkE11ModelExploration(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E11ModelQuality(1) })
}

func BenchmarkE12MediaPlayer(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E12MediaPlayer(2) })
}

func BenchmarkE13FMEA(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E13FMEA(1) })
}

// BenchmarkE14Fleet drives 1 000 monitored devices through the sharded
// fleet pool at increasing shard counts. Each op is one broadcast round
// (1 000 events, one per device, each through its monitor's input observer,
// model executor and comparator); every 25th round also advances virtual
// time. The events/s metric should scale near-linearly with shards up to
// GOMAXPROCS — on a multi-core host 4 shards sustain ≥2x the 1-shard rate.
func BenchmarkE14Fleet(b *testing.B) {
	const devices = 1000
	shardSet := []int{1, 2, 4}
	if mp := runtime.GOMAXPROCS(0); mp > 4 {
		shardSet = append(shardSet, mp)
	}
	for _, shards := range shardSet {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool := fleet.NewPool(fleet.Options{Shards: shards})
			defer pool.Stop()
			factory := fleet.LightFactory(97)
			for i := 0; i < devices; i++ {
				if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, factory); err != nil {
					b.Fatal(err)
				}
			}
			e := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.Broadcast(e); err != nil {
					b.Fatal(err)
				}
				if i%25 == 24 {
					if err := pool.Advance(10 * sim.Millisecond); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := pool.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(devices*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}
