package trader_test

// One benchmark per experiment of DESIGN.md §4. Each regenerates the
// corresponding figure/claim of the paper; `go test -bench=. -benchmem`
// therefore reproduces the full evaluation. The per-iteration wall time is
// the cost of simulating the whole experiment (tens of virtual seconds of
// TV operation per iteration for the system-level ones).

import (
	"bytes"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trader/internal/control"
	"trader/internal/core"
	"trader/internal/diagnose"
	"trader/internal/event"
	"trader/internal/exper"
	"trader/internal/federate"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/statemachine"
	"trader/internal/trace"
	"trader/internal/wire"
)

func benchTable(b *testing.B, run func() (*exper.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE1ClosedLoop(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E1ClosedLoop(1) })
}

// BenchmarkE2FrameworkOverhead measures the monitor's hot path directly:
// one observation through the Output Observer and Comparator.
func BenchmarkE2FrameworkOverhead(b *testing.B) {
	k := sim.NewKernel(1)
	r := statemachine.NewRegion("r")
	r.Add(&statemachine.State{Name: "s", Entry: func(c *statemachine.Context) { c.Set("x", 0) }})
	model := statemachine.MustModel("bench", k, r)
	mon, err := core.NewMonitor(k, model, core.Configuration{Observables: []core.Observable{
		{EventName: "out", ValueName: "x", ModelVar: "x", Threshold: 0.5, Tolerance: 1},
	}})
	if err != nil {
		b.Fatal(err)
	}
	if err := mon.Start(); err != nil {
		b.Fatal(err)
	}
	e := event.Event{Kind: event.Output, Name: "out"}.With("x", 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mon.HandleOutput(e)
	}
}

func BenchmarkE2SocketPath(b *testing.B) {
	// Cross-process framing cost: one event encoded + decoded + compared.
	n := b.N
	b.ResetTimer()
	if _, err := exper.E2SocketThroughput(n); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkE3ComparatorTradeoff(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E3ComparatorTradeoff(1) })
}

func BenchmarkE4SpectrumDiagnosis(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E4Diagnosis(42) })
}

// BenchmarkE4RankOnly isolates the ranking computation on the paper-sized
// matrix (60 000 blocks × 27 transactions).
func BenchmarkE4RankOnly(b *testing.B) {
	p := spectrum.GenerateTVProgram(42, 60000)
	fault := p.FaultInFeature("teletext")
	m := p.RunScenario(spectrum.PaperScenario(), fault)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Rank(spectrum.Ochiai)
	}
}

func BenchmarkE5ModeConsistency(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E5ModeConsistency(1) })
}

func BenchmarkE6PartialRecovery(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E6Recovery(1) })
}

func BenchmarkE7Migration(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E7Migration(3) })
}

func BenchmarkE8Perception(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E8Perception(42) })
}

func BenchmarkE9StressTest(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E9Stress(9) })
}

func BenchmarkE10WarningPriority(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E10WarningPriority(1) })
}

func BenchmarkE11ModelExploration(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E11ModelQuality(1) })
}

func BenchmarkE12MediaPlayer(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E12MediaPlayer(2) })
}

func BenchmarkE13FMEA(b *testing.B) {
	benchTable(b, func() (*exper.Table, error) { return exper.E13FMEA(1) })
}

// wireBenchMessage is the representative ingestion frame: one observation
// with a realistic value payload, as streamed by every fleet device.
func wireBenchMessage() wire.Message {
	ev := event.Event{Kind: event.Output, Name: "frame", Source: "video", At: 123 * sim.Millisecond, Seq: 42}
	ev = ev.With("quality", 0.87).With("fps", 50).With("luma", 112)
	return wire.Message{Type: wire.TypeOutput, SUO: "tvsim-000123", Event: &ev, At: 123 * sim.Millisecond}
}

// benchWireCodec measures the frame hot path per codec: encode writes one
// frame into a reused buffer; decode reads it back (the decoder reuses its
// payload buffer, so steady-state decode cost is pure codec cost). The
// acceptance bar from ISSUE 2: binary decode ≥ 3× faster than JSON with
// fewer allocations per frame.
func benchWireCodec(b *testing.B, codec wire.Codec) {
	benchWireMessage(b, codec, wireBenchMessage())
}

func BenchmarkWireJSON(b *testing.B)   { benchWireCodec(b, wire.JSON) }
func BenchmarkWireBinary(b *testing.B) { benchWireCodec(b, wire.Binary) }

// snapshotBenchMessage is a representative diagnosis-evidence frame: a
// paper-scale (60 000-block) coverage snapshot with four half-populated
// windows — the payload a device serves on a diagnosis pull and the
// journal's evidence record.
func snapshotBenchMessage() wire.Message {
	rec := diagnose.NewRecorder(diagnose.RecorderOptions{Blocks: diagnose.DefaultBlocks, Windows: 4, Seed: 7})
	for w := 0; w < 4; w++ {
		for _, f := range []string{"teletext", "volume", "zapping", "menu"} {
			rec.Press(f)
		}
		rec.Rotate(sim.Time(w+1) * sim.Second)
	}
	return wire.Message{Type: wire.TypeSnapshot, SUO: "tvsim-000123", Target: "fail",
		At: 4 * sim.Second, Snapshot: rec.Snapshot()}
}

// BenchmarkSnapshotJSON/BenchmarkSnapshotBinary measure the snapshot frame
// on the same encode/decode harness as the observation frames: the
// diagnosis pull path moves ~60 KiB coverage payloads, so its codec cost is
// a tracked number next to the per-observation costs.
func BenchmarkSnapshotJSON(b *testing.B)   { benchWireMessage(b, wire.JSON, snapshotBenchMessage()) }
func BenchmarkSnapshotBinary(b *testing.B) { benchWireMessage(b, wire.Binary, snapshotBenchMessage()) }

// BenchmarkFleetDiagnosis measures the fleet-level diagnosis engine room at
// paper scale (60 000 blocks): "fold" is one labeled 4-window snapshot
// accumulated into the sharded spectrum (the per-evidence cost of a pull),
// "rank" is the parallel top-10 suspiciousness ranking over the folded
// counters (the per-rollup cost).
func BenchmarkFleetDiagnosis(b *testing.B) {
	msg := snapshotBenchMessage()
	windows := msg.Snapshot.Windows
	b.Run("fold", func(b *testing.B) {
		s := spectrum.NewSpectra(diagnose.DefaultBlocks, 0)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, w := range windows {
				s.FoldWords(w.Words, i%9 == 0)
			}
		}
	})
	b.Run("rank", func(b *testing.B) {
		s := spectrum.NewSpectra(diagnose.DefaultBlocks, 0)
		for i := 0; i < 64; i++ {
			for _, w := range windows {
				s.FoldWords(w.Words, i%9 == 0)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := s.TopN(spectrum.Ochiai, 10); len(got) != 10 {
				b.Fatal("short ranking")
			}
		}
	})
}

// BenchmarkIncrementalRank measures the continuous-mode rank update (ISSUE
// 9): one op is one sparse heartbeat delta folded into a populated spectrum
// followed by a top-10 ranking read. mode=incremental folds with top-K
// tracking on and reads through Spectra.Top — the candidate set absorbs the
// touched blocks, so the read is O(k) against the guard instead of a scan —
// while mode=full re-ranks the whole counter matrix with TopN every time.
// The acceptance bar is incremental ≥ 50× faster than full at the paper's
// 60 000-block scale; the 600 000-block rows show the gap widening with
// program size, since the incremental cost tracks touched blocks, not
// blocks.
func BenchmarkIncrementalRank(b *testing.B) {
	for _, blocks := range []int{60000, 600000} {
		// The pass-window shape every delta ships: 64 populated words spread
		// across the program (~4 000 touched blocks of shared code). Fail
		// windows add a small fault neighborhood — 16 blocks executed only
		// when the defect fires — which is what keeps the true top-10
		// separable from the shared-code tie sea, as a real fault is.
		shared := make([]uint64, 64)
		sharedIdx := make([]uint32, 64)
		stride := uint32(blocks/64) / 64
		for i := range shared {
			sharedIdx[i] = uint32(i)*stride + 1
			shared[i] = 0x0101010101010101 << uint(i%8)
		}
		failIdx := append([]uint32{0}, sharedIdx...)
		failWords := append([]uint64{0xffff}, shared...)
		fold := func(s *spectrum.Spectra, i int) {
			if i%9 == 0 {
				s.FoldSparse(failIdx, failWords, true)
			} else {
				s.FoldSparse(sharedIdx, shared, false)
			}
		}
		seed := func(s *spectrum.Spectra) {
			for i := 0; i < 64; i++ {
				fold(s, i)
			}
		}
		b.Run(fmt.Sprintf("blocks=%d/mode=incremental", blocks), func(b *testing.B) {
			s := spectrum.NewSpectra(blocks, 0)
			s.TrackTop(10)
			seed(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fold(s, i)
				if got := s.Top(spectrum.Ochiai); len(got) != 10 {
					b.Fatal("short ranking")
				}
			}
		})
		b.Run(fmt.Sprintf("blocks=%d/mode=full", blocks), func(b *testing.B) {
			s := spectrum.NewSpectra(blocks, 0)
			seed(s)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				fold(s, i)
				if got := s.TopN(spectrum.Ochiai, 10); len(got) != 10 {
					b.Fatal("short ranking")
				}
			}
		})
	}
}

// benchWireMessage is benchWireCodec for an arbitrary message shape.
func benchWireMessage(b *testing.B, codec wire.Codec, msg wire.Message) {
	b.Run("encode", func(b *testing.B) {
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		enc.SetCodec(codec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf.Reset()
			if err := enc.Encode(msg); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("decode", func(b *testing.B) {
		var buf bytes.Buffer
		enc := wire.NewEncoder(&buf)
		enc.SetCodec(codec)
		if err := enc.Encode(msg); err != nil {
			b.Fatal(err)
		}
		raw := buf.Bytes()
		r := bytes.NewReader(raw)
		dec := wire.NewDecoder(r)
		dec.SetCodec(codec)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Reset(raw)
			if _, err := dec.Decode(); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkJournalAppend measures the journal hot path in isolation: one
// representative observation frame encoded (binary wire codec), CRC-framed
// and appended. "sync" is the durable configuration the ingestion daemon
// runs — group-commit fsync, so the syncs/op metric shows how many appends
// each fsync batch absorbed under the parallel load; "nosync" isolates the
// encode+CRC+buffered-write cost with durability off.
func BenchmarkJournalAppend(b *testing.B) {
	msg := wireBenchMessage()
	for _, mode := range []struct {
		name   string
		noSync bool
	}{{"sync", false}, {"nosync", true}} {
		b.Run(mode.name, func(b *testing.B) {
			w, err := journal.Create(b.TempDir(), journal.Options{NoSync: mode.noSync})
			if err != nil {
				b.Fatal(err)
			}
			defer w.Close()
			b.ReportAllocs()
			// Group commit only batches when appends overlap; 8 goroutines
			// per proc keeps appenders piling up behind the fsync leader
			// even on a single-core host (the fsync syscall yields the P).
			b.SetParallelism(8)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if err := w.Append(msg); err != nil {
						b.Error(err)
						return
					}
				}
			})
			b.StopTimer()
			if st := w.Stats(); st.Appends > 0 {
				b.ReportMetric(float64(st.Syncs)/float64(st.Appends), "syncs/op")
			}
		})
	}
}

// BenchmarkFleetIngestion measures the full networked ingestion path of
// ISSUE 2: concurrent SUO connections over a real Unix socket, each frame
// handshaken, framed, decoded and dispatched through the FNV shard routing
// into a per-device monitor. One op is one observation frame end-to-end;
// the heartbeat flush barrier at the end guarantees every frame has been
// through its monitor before the clock stops. The journal=on variants add
// ISSUE 3's durable write-ahead journal to the same path, so the cost of
// group-commit fsync batching is a tracked number next to the journal-off
// baseline; the ctl=on variant additionally attaches ISSUE 4's recovery
// controller (healthy traffic: its per-frame cost is the report fan-in
// registration only, and the acceptance bar is staying within 10% of the
// journal-on baseline); the diag=on variant additionally attaches ISSUE 5's
// diagnosis engine (same 10% bar against ctl=on: with no escalations the
// engine never pulls, so healthy-path ingestion must not notice it). The
// journal=sharded variants run ISSUE 6's per-shard segment streams — one
// group-commit fsync pipeline per pool shard instead of one for the whole
// fleet (acceptance bar: within ~3x of journal=off, against ~13x for the
// flat journal on a many-core host) — and durability=dispatch additionally
// has every connection negotiate the relaxed ack-on-dispatch tier, taking
// the fsync wait off the ack path entirely.
func BenchmarkFleetIngestion(b *testing.B) {
	const (
		conns = 32
		// flowWindow is the credit window the flow=on variant grants. In
		// steady state the daemon's mid-stream replenishment (sent at half
		// window while pressure is low) keeps a compliant client streaming
		// without ever blocking, so the acceptance bar is flow=on within 5%
		// of the journal-off baseline's frames/s.
		flowWindow = 1024
	)
	// The diag=continuous variant streams the continuous-diagnosis plane on
	// top: every contDeltaEvery'th observation is preceded by a sparse
	// 600 000-block spectrum delta (the heartbeat piggyback at the bench's
	// compressed cadence), which the engine folds incrementally as it
	// arrives. The acceptance bar is frames/s within 10% of the diag-off
	// ctl=on baseline — continuous ingestion must cost the observation path
	// nearly nothing even at 10× the paper's program scale.
	const (
		contBlocks     = 600000
		contDeltaEvery = 50
	)
	contIndex := make([]uint32, 64)
	contWords := make([]uint64, 64)
	for i := range contWords {
		contIndex[i] = uint32(i) * uint32(contBlocks/64/64)
		contWords[i] = 0x0101010101010101 << uint(i%8)
	}
	for _, cfg := range []struct {
		codec      string
		journal    bool
		sharded    bool
		relaxed    bool
		controller bool
		diagnosis  bool
		continuous bool
		flow       bool
		trace      bool
	}{
		{codec: wire.CodecJSON},
		{codec: wire.CodecBinary},
		// trace=on is the tracing plane at its default 1-in-128 sampling;
		// the acceptance bar is frames/s within 5% of the trace=off binary
		// baseline — the unsampled path must stay the pre-tracing path.
		{codec: wire.CodecBinary, trace: true},
		{codec: wire.CodecBinary, flow: true},
		{codec: wire.CodecJSON, journal: true},
		{codec: wire.CodecBinary, journal: true},
		{codec: wire.CodecBinary, journal: true, sharded: true},
		{codec: wire.CodecBinary, journal: true, sharded: true, relaxed: true},
		{codec: wire.CodecBinary, journal: true, controller: true},
		{codec: wire.CodecBinary, journal: true, controller: true, diagnosis: true},
		{codec: wire.CodecBinary, journal: true, controller: true, diagnosis: true, continuous: true},
	} {
		codec := cfg.codec
		name := fmt.Sprintf("codec=%s/journal=off", codec)
		if cfg.journal {
			name = fmt.Sprintf("codec=%s/journal=on", codec)
		}
		if cfg.sharded {
			name = fmt.Sprintf("codec=%s/journal=sharded", codec)
		}
		if cfg.relaxed {
			name += "/durability=dispatch"
		}
		if cfg.controller {
			name += "/ctl=on"
		}
		if cfg.diagnosis {
			if cfg.continuous {
				name += "/diag=continuous"
			} else {
				name += "/diag=on"
			}
		}
		if cfg.flow {
			name += "/flow=on"
		}
		if cfg.trace {
			name += "/trace=on"
		}
		b.Run(name, func(b *testing.B) {
			popts := fleet.Options{}
			if cfg.trace {
				popts.Tracer = trace.New(trace.Options{
					Shards: runtime.GOMAXPROCS(0), SampleN: trace.DefaultSampleN})
			}
			pool := fleet.NewPool(popts)
			defer pool.Stop()
			srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
				Tracer: popts.Tracer}
			defer srv.Close()
			if cfg.flow {
				srv.CreditWindow = flowWindow
			}
			if cfg.journal {
				var jw fleet.FrameJournal
				if cfg.sharded {
					sj, err := journal.CreateSharded(b.TempDir(), pool.Shards(), journal.Options{})
					if err != nil {
						b.Fatal(err)
					}
					defer sj.Close()
					jw = sj
				} else {
					fj, err := journal.Create(b.TempDir(), journal.Options{})
					if err != nil {
						b.Fatal(err)
					}
					defer fj.Close()
					jw = fj
				}
				srv.Journal = jw
				var eng *diagnose.Engine
				if cfg.diagnosis {
					opts := diagnose.Options{Requester: srv, Journal: jw}
					if cfg.continuous {
						opts.Continuous = true
						opts.Blocks = contBlocks
					}
					eng = diagnose.Attach(pool, opts)
					defer eng.Close()
					srv.OnSnapshot = eng.HandleSnapshot
					if cfg.continuous {
						srv.OnSpectrumDelta = eng.HandleSpectrumDelta
					}
				}
				if cfg.controller {
					opts := control.Options{Actuator: srv, Journal: jw, Policy: control.DefaultPolicy()}
					if eng != nil {
						opts.OnEscalate = eng.HandleAction
					}
					ctl := control.Attach(pool, opts)
					defer ctl.Close()
					srv.OnAck = ctl.HandleAck
				}
			}
			ln, err := wire.Listen("unix:" + filepath.Join(b.TempDir(), "bench.sock"))
			if err != nil {
				b.Fatal(err)
			}
			defer ln.Close()
			go srv.Serve(ln)

			clients := make([]*wire.Conn, conns)
			echo := make([]*atomic.Int64, conns)
			credits := make([]*atomic.Int64, conns)
			addr := ln.Addr().String()
			for i := range clients {
				var wc *wire.Conn
				var err error
				cr := &atomic.Int64{}
				credits[i] = cr
				switch {
				case cfg.flow:
					var granted uint32
					wc, _, granted, err = wire.DialFlow("unix:"+addr, fmt.Sprintf("bench-%03d", i), codec, wire.DurFsync)
					cr.Store(int64(granted))
				case cfg.relaxed:
					wc, _, err = wire.DialTiered("unix:"+addr, fmt.Sprintf("bench-%03d", i), codec, wire.DurDispatch)
				default:
					wc, err = wire.Dial("unix:"+addr, fmt.Sprintf("bench-%03d", i), codec)
				}
				if err != nil {
					b.Fatal(err)
				}
				defer wc.Close()
				clients[i] = wc
				last := &atomic.Int64{}
				echo[i] = last
				go func(wc *wire.Conn, last, cr *atomic.Int64) {
					for {
						msg, err := wc.Decode()
						if err != nil {
							return
						}
						switch msg.Type {
						case wire.TypeCredit:
							cr.Add(int64(msg.Credits))
						case wire.TypeHeartbeat:
							// The echo also replenishes the window; recording
							// just the newest At keeps this reader non-
							// blocking — a reader parked on a full signal
							// channel would stop draining grants, wedge the
							// window shut and trip the server's write timeout.
							cr.Add(int64(msg.Credits))
							if at := int64(msg.At); at > last.Load() {
								last.Store(at)
							}
						}
					}
				}(wc, last, cr)
			}

			per := b.N/conns + 1
			finalAt := sim.Time(per+1) * sim.Millisecond
			b.ResetTimer()
			var wg sync.WaitGroup
			for i, wc := range clients {
				wg.Add(1)
				go func(i int, wc *wire.Conn) {
					defer wg.Done()
					id := fmt.Sprintf("bench-%03d", i)
					cr := credits[i]
					for j := 0; j < per; j++ {
						at := sim.Time(j+1) * sim.Millisecond
						if cfg.flow {
							// Compliant streaming: mid-stream grants normally
							// arrive before the window drains; if one is late,
							// solicit the echo grant and wait it out.
							for cr.Load() <= 0 {
								if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: at}); err != nil {
									b.Error(err)
									return
								}
								time.Sleep(time.Millisecond)
							}
							cr.Add(-1)
						}
						if cfg.continuous && j%contDeltaEvery == 0 {
							d := &wire.SpectrumDelta{Seq: uint64(j / contDeltaEvery),
								Blocks: contBlocks, Index: contIndex, Words: contWords}
							if err := wc.Encode(wire.Message{Type: wire.TypeSpectrumDelta,
								SUO: id, At: at, Delta: d}); err != nil {
								b.Error(err)
								return
							}
						}
						ev := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", 0)
						if err := wc.SendEvent(id, ev); err != nil {
							b.Error(err)
							return
						}
					}
					if err := wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: finalAt}); err != nil {
						b.Error(err)
						return
					}
					deadline := time.Now().Add(30 * time.Second)
					for echo[i].Load() < int64(finalAt) {
						if time.Now().After(deadline) {
							b.Error("heartbeat echo timeout")
							return
						}
						time.Sleep(100 * time.Microsecond)
					}
				}(i, wc)
			}
			wg.Wait()
			b.StopTimer()
			b.ReportMetric(float64(conns*per)/b.Elapsed().Seconds(), "frames/s")
			// The latency-SLO plane's numbers for this variant: ingest-to-
			// dispatch quantiles over every admitted frame of the run.
			if lat := pool.Latency(); lat.Count() > 0 {
				b.ReportMetric(lat.Quantile(0.5).Seconds()*1e3, "p50-ms")
				b.ReportMetric(lat.Quantile(0.99).Seconds()*1e3, "p99-ms")
				b.ReportMetric(lat.Quantile(0.999).Seconds()*1e3, "p999-ms")
			}
		})
	}
}

// BenchmarkE14Fleet drives 1 000 monitored devices through the sharded
// fleet pool at increasing shard counts. Each op is one broadcast round
// (1 000 events, one per device, each through its monitor's input observer,
// model executor and comparator); every 25th round also advances virtual
// time. The events/s metric should scale near-linearly with shards up to
// GOMAXPROCS — on a multi-core host 4 shards sustain ≥2x the 1-shard rate.
func BenchmarkE14Fleet(b *testing.B) {
	const devices = 1000
	shardSet := []int{1, 2, 4}
	if mp := runtime.GOMAXPROCS(0); mp > 4 {
		shardSet = append(shardSet, mp)
	}
	if testing.Short() {
		// -short keeps one representative configuration; the full shard
		// sweep (the scaling claim) runs in CI's smoke job.
		shardSet = shardSet[len(shardSet)-1:]
	}
	for _, shards := range shardSet {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			pool := fleet.NewPool(fleet.Options{Shards: shards})
			defer pool.Stop()
			factory := fleet.LightFactory(97)
			for i := 0; i < devices; i++ {
				if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, factory); err != nil {
					b.Fatal(err)
				}
			}
			e := event.Event{Kind: event.Input, Name: "set", Source: "headend"}.With("x", 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := pool.Broadcast(e); err != nil {
					b.Fatal(err)
				}
				if i%25 == 24 {
					if err := pool.Advance(10 * sim.Millisecond); err != nil {
						b.Fatal(err)
					}
				}
			}
			if err := pool.Sync(); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			b.ReportMetric(float64(devices*b.N)/b.Elapsed().Seconds(), "events/s")
		})
	}
}

// BenchmarkCheckpointReplay measures boot-time journal recovery with and
// without a checkpoint resume point (ISSUE 6). Both journals hold the same
// session — history frames, then a short post-checkpoint delta — but in
// mode=checkpoint the history is summarised by per-stream checkpoint
// batches, so Replay restores monitor state from the records and
// re-dispatches only the delta, while mode=full re-dispatches everything.
// One op is one cold boot: fresh pool, open, replay, settle.
func BenchmarkCheckpointReplay(b *testing.B) {
	const (
		devices = 64
		shards  = 4
		history = 50 // frames per device before the checkpoint
		delta   = 5  // frames per device after it
	)
	discard := func(wire.Message) error { return nil }
	build := func(dir string, checkpoint bool) {
		pool := fleet.NewPool(fleet.Options{Shards: shards})
		defer pool.Stop()
		jw, err := journal.CreateSharded(dir, shards, journal.Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		ids := make([]string, devices)
		for i := range ids {
			ids[i] = fmt.Sprintf("boot-%03d", i)
			if err := pool.AddRemoteDevice(ids[i], fleet.LightMonitorFactory(), discard); err != nil {
				b.Fatal(err)
			}
		}
		// Journal and dispatch in lock-step, the way the ingestion server
		// does, so the checkpoint captures exactly the journaled prefix.
		phase := func(n int, fromMs int64) {
			for _, id := range ids {
				for j := 0; j < n; j++ {
					at := sim.Time(fromMs+int64(j)*10) * sim.Millisecond
					ev := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", 0)
					m := wire.Message{Type: wire.TypeOutput, SUO: id, At: at, Event: &ev}
					if err := jw.Append(m); err != nil {
						b.Fatal(err)
					}
					if err := pool.Dispatch(id, ev); err != nil {
						b.Fatal(err)
					}
				}
				hbAt := sim.Time(fromMs+int64(n)*10) * sim.Millisecond
				if err := jw.Append(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: hbAt}); err != nil {
					b.Fatal(err)
				}
				if err := pool.AdvanceDevice(id, hbAt); err != nil {
					b.Fatal(err)
				}
			}
			if err := pool.Sync(); err != nil {
				b.Fatal(err)
			}
		}
		phase(history, 10)
		if checkpoint {
			cper := &fleet.Checkpointer{Pool: pool, Journal: jw, Profile: "light"}
			if err := cper.Checkpoint(); err != nil {
				b.Fatal(err)
			}
		}
		phase(delta, 10+int64(history)*10+10)
		if err := jw.Close(); err != nil {
			b.Fatal(err)
		}
	}
	for _, mode := range []struct {
		name       string
		checkpoint bool
	}{{"full", false}, {"checkpoint", true}} {
		b.Run("mode="+mode.name, func(b *testing.B) {
			dir := b.TempDir()
			build(dir, mode.checkpoint)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				pool := fleet.NewPool(fleet.Options{Shards: shards})
				jr, err := journal.OpenReader(dir)
				if err != nil {
					b.Fatal(err)
				}
				st, err := pool.Replay(jr, fleet.LightMonitorFactory())
				jr.Close()
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(float64(st.Frames), "frames/boot")
				}
				pool.Stop()
			}
		})
	}
}

// BenchmarkFederationUplink measures the federation tier's steady-state
// cost per rollup flush: the edge folds its cumulative sample into a signed
// delta against the last acked flush, encodes it as a binary TypeRollup
// frame, and the aggregator decodes and credits it into the merged view —
// the complete uplink cycle of ARCHITECTURE.md §7.2 minus the network. The
// counter set is the one a real edge flushes (fleet + server + control +
// diagnosis planes, ~25 names), with a realistic handful changing per
// flush. Reports deltas/s (full fold→encode→decode→credit cycles) and
// bytes/delta (uplink bandwidth per flush).
func BenchmarkFederationUplink(b *testing.B) {
	// The cumulative sample a steady-state edge carries.
	cur := federate.Counters{}
	for _, name := range []string{
		"inputs", "outputs", "comparisons", "deviations", "errors",
		"model_errors", "silence_scans", "dispatched", "dropped",
		"quarantined", "reports", "shed_obs", "shed_hb", "latency_count",
		"latency_sum_ns", "frames", "conns_accepted", "conns_rejected",
		"conns_disconnected", "credit_grants", "credit_violations",
		"recovery_reports", "recovery_resets", "diagnosis_snapshots",
		"diagnosis_fail_windows",
	} {
		cur[name] = 1_000_000
	}
	acked := cur.Clone()

	var buf bytes.Buffer
	enc := wire.NewEncoder(&buf)
	enc.SetCodec(wire.Binary)
	dec := wire.NewDecoder(&buf)
	dec.SetCodec(wire.Binary)
	merged := federate.Counters{}
	var bytesTotal, seq uint64

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A flush interval's worth of activity: the hot counters advance.
		cur["inputs"] += 40
		cur["outputs"] += 40
		cur["comparisons"] += 40
		cur["frames"] += 41
		cur["dispatched"] += 40
		cur["latency_count"] += 40
		cur["latency_sum_ns"] += 40 * 180_000
		if i%16 == 0 {
			cur["deviations"]++
			cur["reports"]++
		}

		// Edge side: fold the delta, frame it, send.
		seq++
		d := cur.Diff(acked)
		buf.Reset()
		err := enc.Encode(wire.Message{Type: wire.TypeRollup, SUO: "edge-0",
			Rollup: &wire.RollupDelta{Seq: seq, Devices: 512, Counters: d.ToWire()}})
		if err != nil {
			b.Fatal(err)
		}
		bytesTotal += uint64(buf.Len())
		acked = cur.Clone()

		// Aggregator side: decode and credit.
		m, err := dec.Decode()
		if err != nil {
			b.Fatal(err)
		}
		merged.Add(federate.FromWire(m.Rollup.Counters))
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "deltas/s")
	b.ReportMetric(float64(bytesTotal)/float64(b.N), "bytes/delta")

	if got := merged["outputs"]; got != int64(b.N)*40 {
		b.Fatalf("credited outputs = %d, want %d — conservation broken", got, int64(b.N)*40)
	}
}
