package trader_test

// End-to-end tests of the frame-lifecycle tracing plane (ISSUE 10).
//
// TestE2ETraceExemplarFederation pins the cross-tier exemplar contract:
// devices stream through two traced edge daemons uplinking to one traced
// aggregator, and a p999 latency exemplar surfaced at the aggregator must
// resolve — via the edge's tracer — to the full span chain of one frame's
// lifecycle, rooted at its ingest span.
//
// TestE2EIncidentBundleReplay pins the incident-bundle determinism
// contract: bundles written live at the moment the control ladder fired
// must be byte-identical to bundles rebuilt later by replaying the
// journal, even though the run kept journaling actions past each trigger.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trader/internal/control"
	"trader/internal/federate"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/trace"
	"trader/internal/wire"
)

// startTracedEdge is startE2EEdge with the tracing plane wired through all
// three layers the way traderd wires it: the same tracer on the pool (the
// dispatch/monitor half), the server (ingest/credit/journal half and the
// forced control plane) and the uplink (exemplar-carrying rollups). The
// seed is pinned so a failure reproduces with the same IDs; SampleN 1
// traces every frame, so the exemplar chain is never sampled away.
func startTracedEdge(t *testing.T, upstream string, rng, of int, seed uint64) (*e2eEdge, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Options{Shards: 4, SampleN: 1, Seed: seed})
	e := &e2eEdge{id: fmt.Sprintf("edge-%d", rng), dir: t.TempDir(), done: make(chan struct{})}
	jw, err := journal.Create(e.dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.jw = jw
	e.pool = fleet.NewPool(fleet.Options{Shards: 4, Tracer: tr})
	t.Cleanup(e.pool.Stop)
	e.srv = &fleet.Server{Pool: e.pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw, Tracer: tr}
	e.addr = "unix:" + filepath.Join(t.TempDir(), e.id+".sock")
	ln, err := wire.Listen(e.addr)
	if err != nil {
		t.Fatal(err)
	}
	e.ln = ln
	go e.srv.Serve(ln)
	e.edge = &federate.Edge{
		Upstream: upstream, Range: rng, Of: of, ID: e.id,
		Sample:  federate.PoolSampler(e.pool, e.srv),
		Pool:    e.pool,
		Factory: fleet.LightMonitorFactory(),
		Journal: jw, JournalDir: e.dir,
		Flush:  10 * time.Millisecond,
		Tracer: tr,
		Logf:   t.Logf,
	}
	e.ran = make(chan struct{})
	go func() {
		defer close(e.ran)
		e.edge.Run(e.done)
	}()
	t.Cleanup(e.kill)
	return e, tr
}

func TestE2ETraceExemplarFederation(t *testing.T) {
	const (
		devices = 16
		ranges  = 2
		frames  = 24
	)

	aggTr := trace.New(trace.Options{Shards: 1, SampleN: 1, Seed: 0xa66})
	agg := &federate.Aggregator{Ranges: ranges, Logf: t.Logf, Tracer: aggTr}
	aln, err := wire.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agg.Serve(aln)
	t.Cleanup(agg.Close)
	upstream := "tcp:" + aln.Addr().String()

	edge0, tr0 := startTracedEdge(t, upstream, 0, ranges, 0xed6e0)
	edge1, tr1 := startTracedEdge(t, upstream, 1, ranges, 0xed6e1)
	edges := []*e2eEdge{edge0, edge1}
	tracers := []*trace.Tracer{tr0, tr1}

	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("tdev-%03d", i)
		e := edges[fleet.RangeOf(id, ranges)]
		c := dialE2E(t, e.addr, id, wire.CodecBinary)
		defer c.conn.Close()
		c.stream(t, frames, 0.0, 0)
	}
	waitFor(t, "aggregator sees every device", func() bool {
		return agg.View().Devices == devices
	})

	// 1. Each edge's p999 exemplar resolves locally to a complete frame
	// lifecycle: an ingest root with journal, dispatch and monitor spans
	// causally chained under it, all owned by one device.
	for i, e := range edges {
		lat := e.pool.Latency()
		ex := lat.Exemplar(0.999)
		if ex == 0 {
			t.Fatalf("%s: no p999 exemplar after %d traced frames", e.id, frames)
		}
		chain := tracers[i].Trace(ex)
		if len(chain) == 0 {
			t.Fatalf("%s: exemplar %s resolves to no retained spans", e.id, trace.ID(ex))
		}
		byKind := map[trace.Kind]trace.Span{}
		for _, s := range chain {
			byKind[s.Kind] = s
		}
		ingest, ok := byKind[trace.KindIngest]
		if !ok {
			t.Fatalf("%s: exemplar chain %s has no ingest root: %+v", e.id, trace.ID(ex), chain)
		}
		if ingest.Parent != 0 {
			t.Fatalf("%s: ingest span is not the chain's root (parent %s)", e.id, trace.ID(ingest.Parent))
		}
		for _, k := range []trace.Kind{trace.KindJournal, trace.KindDispatch, trace.KindMonitor} {
			s, ok := byKind[k]
			if !ok {
				t.Fatalf("%s: exemplar chain %s missing %s span: %+v", e.id, trace.ID(ex), k, chain)
			}
			if s.Device != ingest.Device {
				t.Fatalf("%s: %s span owned by %q, ingest by %q", e.id, k, s.Device, ingest.Device)
			}
		}
		// The causal edges the §6.2 taxonomy promises: journal and dispatch
		// parent on ingest, monitor on dispatch.
		if byKind[trace.KindJournal].Parent != ingest.SpanID {
			t.Fatalf("%s: journal span parents on %s, want ingest %s",
				e.id, trace.ID(byKind[trace.KindJournal].Parent), trace.ID(ingest.SpanID))
		}
		if byKind[trace.KindDispatch].Parent != ingest.SpanID {
			t.Fatalf("%s: dispatch span parents on %s, want ingest %s",
				e.id, trace.ID(byKind[trace.KindDispatch].Parent), trace.ID(ingest.SpanID))
		}
		if byKind[trace.KindMonitor].Parent != byKind[trace.KindDispatch].SpanID {
			t.Fatalf("%s: monitor span parents on %s, want dispatch %s",
				e.id, trace.ID(byKind[trace.KindMonitor].Parent), trace.ID(byKind[trace.KindDispatch].SpanID))
		}
	}

	// 2. The cross-tier link: the aggregator retains a receive-side uplink
	// span whose trace ID resolves on an edge to an ingest-rooted chain
	// that also carries the edge-side uplink span — one trace spanning a
	// frame's lifecycle on the edge AND its exemplar's ride upstream.
	var crossTrace uint64
	waitFor(t, "aggregator uplink span resolving to an edge ingest chain", func() bool {
		for _, s := range aggTr.Snapshot() {
			if s.Kind != trace.KindUplink {
				continue
			}
			for _, tr := range tracers {
				var haveIngest, haveUplink bool
				for _, es := range tr.Trace(s.TraceID) {
					haveIngest = haveIngest || es.Kind == trace.KindIngest
					haveUplink = haveUplink || es.Kind == trace.KindUplink
				}
				if haveIngest && haveUplink {
					crossTrace = s.TraceID
					return true
				}
			}
		}
		return false
	})
	t.Logf("cross-tier exemplar trace %s resolved through the federation", trace.ID(crossTrace))

	// 3. Nothing in the steady state touches the forced ring: overflow is
	// zero everywhere (the invariant the CI chaos job scrapes), and the
	// sampled rings actually recorded the fleet's traffic.
	for i, tr := range append(tracers, aggTr) {
		if n := tr.ForcedOverflow(); n != 0 {
			t.Fatalf("tracer %d: %d forced spans evicted in a run with no control traffic", i, n)
		}
	}
	if tr0.Written() == 0 || tr1.Written() == 0 || aggTr.Written() == 0 {
		t.Fatalf("span counts: edge0 %d, edge1 %d, aggregator %d — every tier must record",
			tr0.Written(), tr1.Written(), aggTr.Written())
	}
}

// liveBundle is one incident bundle as written at escalation time, kept
// for the post-run replay comparison.
type liveBundle struct {
	device string
	seq    int
	rung   control.Rung
	det    []byte // the deterministic half, as marshalled live
	dir    string // the bundle directory on disk
}

func TestE2EIncidentBundleReplay(t *testing.T) {
	const (
		devices = 6
		ticks   = 150
		tick    = 10 * sim.Millisecond
		latency = 40 * sim.Millisecond
	)
	id := func(i int) string { return fmt.Sprintf("ib-%03d", i) }
	faultyID := id(0) // device 0 deviates persistently; the rest stay clean

	dir := t.TempDir()
	bundleRoot := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := trace.New(trace.Options{Shards: 2, SampleN: 1, Seed: 0xb0b})
	pool := fleet.NewPool(fleet.Options{Shards: 2, Tracer: tr})
	defer pool.Stop()
	srv := &fleet.Server{Pool: pool, Factory: silenceMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw, Tracer: tr}
	defer srv.Close()

	// The incident hook does what traderd's -incident-dir recorder does:
	// scan the journal up to the triggering action (already appended — the
	// OnIncident contract) and write the bundle directory. The scan
	// retries briefly because concurrent appends may leave a torn record
	// at the tail of the segment a just-opened reader is walking.
	var mu sync.Mutex
	var bundles []liveBundle
	seqs := map[string]int{}
	onIncident := func(a control.Action) {
		mu.Lock()
		defer mu.Unlock()
		seqs[a.Device]++
		seq := seqs[a.Device]
		var inc *trace.Incident
		var ierr error
		for try := 0; try < 50; try++ {
			r, err := journal.OpenReader(dir)
			if err != nil {
				ierr = err
			} else {
				inc, ierr = trace.BuildIncident(r, a.Device, seq)
				r.Close()
			}
			if ierr == nil {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		if ierr != nil {
			t.Errorf("live incident %s/%d: %v", a.Device, seq, ierr)
			return
		}
		det, err := inc.Marshal()
		if err != nil {
			t.Errorf("marshal incident %s/%d: %v", a.Device, seq, err)
			return
		}
		var spans []trace.Span
		for _, s := range tr.Snapshot() {
			if s.Device == a.Device || s.Forced {
				spans = append(spans, s)
			}
		}
		live := &trace.LiveReport{
			WrittenNS: time.Now().UnixNano(),
			Rung:      a.Rung.String(), Class: a.Class.String(),
			Counters: map[string]int64{"credit_grants": int64(srv.Stats().CreditGrants)},
			Spans:    trace.Export(spans),
		}
		bdir, err := trace.WriteBundle(bundleRoot, inc, live)
		if err != nil {
			t.Errorf("write bundle %s/%d: %v", a.Device, seq, err)
			return
		}
		bundles = append(bundles, liveBundle{device: a.Device, seq: seq, rung: a.Rung, det: det, dir: bdir})
	}

	pol := control.Policy{Name: "e2e-trace", Tolerate: 1, Resets: 1, Restarts: 1,
		RestartLatency: latency, Cooldown: 10 * sim.Second}
	ctl := control.Attach(pool, control.Options{
		Actuator: srv, Journal: jw, Policy: pol, Logf: t.Logf,
		OnIncident: onIncident,
	})
	defer ctl.Close()
	srv.OnAck = ctl.HandleAck

	addr := "unix:" + filepath.Join(t.TempDir(), "ib.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// Drive the fleet: clean devices for the full horizon, the faulty one
	// until the ladder quarantines it (it keeps producing evidence through
	// its own restart, exactly like the recovery e2e's clients).
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialRecovery(t, addr, id(i))
			defer c.close()
			x := 0.0
			if i == 0 {
				x = 2.0
			}
			for n := 1; n <= ticks; n++ {
				if c.isQuarantined() {
					return
				}
				c.frame(sim.Time(n)*tick, x)
				if n%10 == 0 {
					c.flush(sim.Time(n) * tick)
				}
			}
			for n := ticks + 1; n <= 2000 && !c.isQuarantined(); n++ {
				if c.conn() == nil {
					time.Sleep(5 * time.Millisecond)
					continue
				}
				c.frame(sim.Time(n)*tick, x)
				if n%10 == 0 {
					c.flush(sim.Time(n) * tick)
				}
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "faulty device quarantined", func() bool {
		return ctl.Rollup().Quarantined == 1
	})
	ctl.Sync()

	// Two incidents fired — the restart trigger and the quarantine trigger
	// — both for the faulty device, in rung order.
	mu.Lock()
	got := append([]liveBundle(nil), bundles...)
	mu.Unlock()
	if len(got) != 2 {
		t.Fatalf("%d incident bundles written, want 2 (restart, quarantine): %+v", len(got), got)
	}
	for i, want := range []control.Rung{control.RungRestart, control.RungQuarantine} {
		if got[i].device != faultyID || got[i].seq != i+1 || got[i].rung != want {
			t.Fatalf("bundle %d is %s/%d at %s, want %s/%d at %s",
				i, got[i].device, got[i].seq, got[i].rung, faultyID, i+1, want)
		}
	}

	// Seal the journal the way a crashed-then-replayed daemon would see it.
	srv.Close()
	ln.Close()
	ctl.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, b := range got {
		// 1. Replay determinism: rebuilding the incident from the sealed
		// journal reproduces the live bundle byte for byte — the actions
		// and evidence journaled after each trigger (the run kept going all
		// the way to quarantine) must not leak in.
		r, err := journal.OpenReader(dir)
		if err != nil {
			t.Fatal(err)
		}
		inc, err := trace.BuildIncident(r, b.device, b.seq)
		r.Close()
		if err != nil {
			t.Fatalf("replay incident %s/%d: %v", b.device, b.seq, err)
		}
		replayed, err := inc.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(replayed, b.det) {
			t.Fatalf("incident %s/%d: replay differs from live bundle:\nlive:\n%s\nreplay:\n%s",
				b.device, b.seq, b.det, replayed)
		}
		onDisk, err := os.ReadFile(filepath.Join(b.dir, "bundle.json"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(onDisk, b.det) {
			t.Fatalf("incident %s/%d: bundle.json on disk differs from the live marshal", b.device, b.seq)
		}

		// 2. The deterministic half carries the full ladder history through
		// its trigger and nothing past it.
		wantRungs := []string{"tolerate", "reset", "restart"}
		if b.seq == 2 {
			wantRungs = append(wantRungs, "quarantine")
		}
		if len(inc.Actions) != len(wantRungs) {
			t.Fatalf("incident %s/%d: %d actions %+v, want rungs %v",
				b.device, b.seq, len(inc.Actions), inc.Actions, wantRungs)
		}
		for i, a := range inc.Actions {
			if a.Rung != wantRungs[i] {
				t.Fatalf("incident %s/%d action %d: rung %q, want %q", b.device, b.seq, i, a.Rung, wantRungs[i])
			}
		}

		// 3. The live half holds the flight-recorder evidence: at least one
		// forced control span for the escalated device (the push that can
		// never be sampled away), and a live.json that parses.
		var live trace.LiveReport
		lb, err := os.ReadFile(filepath.Join(b.dir, "live.json"))
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(lb, &live); err != nil {
			t.Fatalf("incident %s/%d: live.json: %v", b.device, b.seq, err)
		}
		if live.Rung != b.rung.String() {
			t.Fatalf("incident %s/%d: live rung %q, want %q", b.device, b.seq, live.Rung, b.rung)
		}
		var forcedControl bool
		for _, s := range live.Spans {
			if s.Kind == "control" && s.Forced && s.Device == b.device {
				forcedControl = true
				break
			}
		}
		if !forcedControl {
			t.Fatalf("incident %s/%d: live.json holds no forced control span for the device (%d spans)",
				b.device, b.seq, len(live.Spans))
		}
	}

	// The forced ring never overflowed: every control span the incidents
	// rely on was still retained when the bundles were cut.
	if n := tr.ForcedOverflow(); n != 0 {
		t.Fatalf("forced ring evicted %d spans during a four-action episode", n)
	}

	// A full pool replay of the sealed journal still works with the traced
	// frames in it — trace contexts on journaled control pushes are replay
	// metadata, not state.
	rec := fleet.NewPool(fleet.Options{Shards: 2})
	defer rec.Stop()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr, silenceMonitorFactory())
	jr.Close()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Devices != devices {
		t.Fatalf("replay rebuilt %d devices, want %d", st.Devices, devices)
	}
}
