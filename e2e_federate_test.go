package trader_test

// End-to-end test of the federation tier (ISSUE 8): 32 SUO clients stream
// through two edge ingestion daemons, each owning one device-ID hash range,
// each journaling accepted frames write-ahead, each uplinking rollup deltas
// to one aggregator over the binary wire codec. The aggregator's merged
// view must equal the sum of the edge rollups exactly — the counter-fold
// conservation law — then edge A is killed mid-stream with no orderly
// shutdown, the aggregator's failover directs the survivor to adopt A's
// journal, and afterwards zero devices are lost, the merged view is still
// conserved, and a replay of the survivor's journal alone reproduces the
// merged fleet's monitor state exactly.

import (
	"fmt"
	"net"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"trader/internal/federate"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/wire"
)

// e2eEdge is one edge daemon: ingestion server + journal + uplink.
type e2eEdge struct {
	id   string
	dir  string
	pool *fleet.Pool
	srv  *fleet.Server
	jw   *journal.Writer
	ln   net.Listener
	addr string
	done chan struct{}
	ran  chan struct{} // closed when the uplink goroutine has exited
	edge *federate.Edge
}

func startE2EEdge(t *testing.T, upstream string, rng, of int) *e2eEdge {
	t.Helper()
	e := &e2eEdge{id: fmt.Sprintf("edge-%d", rng), dir: t.TempDir(), done: make(chan struct{})}
	jw, err := journal.Create(e.dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e.jw = jw
	e.pool = fleet.NewPool(fleet.Options{Shards: 4})
	t.Cleanup(e.pool.Stop)
	e.srv = &fleet.Server{Pool: e.pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw}
	e.addr = "unix:" + filepath.Join(t.TempDir(), e.id+".sock")
	ln, err := wire.Listen(e.addr)
	if err != nil {
		t.Fatal(err)
	}
	e.ln = ln
	go e.srv.Serve(ln)
	e.edge = &federate.Edge{
		Upstream: upstream, Range: rng, Of: of, ID: e.id,
		Sample:  federate.PoolSampler(e.pool, e.srv),
		Pool:    e.pool,
		Factory: fleet.LightMonitorFactory(),
		Journal: jw, JournalDir: e.dir,
		Flush: 10 * time.Millisecond,
		Logf:  t.Logf,
	}
	e.ran = make(chan struct{})
	go func() {
		defer close(e.ran)
		e.edge.Run(e.done)
	}()
	t.Cleanup(e.kill)
	return e
}

// kill is the SIGKILL equivalent: connections drop, the uplink dies, and
// the journal is NOT closed — exactly the state a crashed process leaves.
// Idempotent; waits for the uplink goroutine so nothing logs post-test.
func (e *e2eEdge) kill() {
	select {
	case <-e.done:
	default:
		close(e.done)
	}
	e.srv.Close()
	e.ln.Close()
	<-e.ran
}

func TestE2EFederation(t *testing.T) {
	const (
		devices = 32
		ranges  = 2
		phase1  = 20 // frames per device before the kill
		phase2  = 10 // frames per surviving device after the kill
	)

	agg := &federate.Aggregator{Ranges: ranges, Failover: 100 * time.Millisecond, Logf: t.Logf}
	aln, err := wire.Listen("tcp:127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go agg.Serve(aln)
	t.Cleanup(agg.Close)
	upstream := "tcp:" + aln.Addr().String()

	edges := []*e2eEdge{
		startE2EEdge(t, upstream, 0, ranges),
		startE2EEdge(t, upstream, 1, ranges),
	}

	// 32 devices, each connected to the edge owning its hash range — the
	// same FNV fold that routes devices to pool shards.
	clients := make(map[string][]*e2eClient) // edge ID → its clients
	for i := 0; i < devices; i++ {
		id := fmt.Sprintf("fdev-%03d", i)
		e := edges[fleet.RangeOf(id, ranges)]
		c := dialE2E(t, e.addr, id, wire.CodecBinary)
		defer c.conn.Close()
		clients[e.id] = append(clients[e.id], c)
	}
	if len(clients["edge-0"]) == 0 || len(clients["edge-1"]) == 0 {
		t.Fatalf("degenerate hash split: %d/%d", len(clients["edge-0"]), len(clients["edge-1"]))
	}
	for _, cs := range clients {
		for _, c := range cs {
			c.stream(t, phase1, 0.0, 0)
		}
	}

	// Conservation, live: the merged view converges to exactly the sum of
	// the two edges' cumulative samples — every counter, not a selection.
	sumOfEdges := func() federate.Sample {
		var s federate.Sample
		s.Counters = federate.Counters{}
		for _, e := range edges {
			es := e.edge.Sample()
			s.Devices += es.Devices
			s.Counters.Add(es.Counters)
		}
		return s
	}
	viewEquals := func(want federate.Sample) func() bool {
		return func() bool {
			v := agg.View()
			return v.Devices == want.Devices &&
				reflect.DeepEqual(v.Counters.Diff(want.Counters), federate.Counters{})
		}
	}
	waitFor(t, "merged view to equal the sum of edge rollups", viewEquals(sumOfEdges()))
	v := agg.View()
	if v.Devices != devices {
		t.Fatalf("merged view holds %d devices, want %d", v.Devices, devices)
	}
	if got := v.Counters["outputs"]; got != devices*phase1 {
		t.Fatalf("merged outputs = %d, want %d", got, devices*phase1)
	}

	// Kill edge-0 mid-stream: no journal close, no drain. The survivor's
	// clients keep streaming while the aggregator times out the corpse and
	// directs edge-1 to adopt its journal.
	edges[0].kill()
	for _, c := range clients["edge-1"] {
		c.stream(t, phase2, 0.0, phase1*10)
	}
	waitFor(t, "failover adoption to complete", func() bool {
		v := agg.View()
		return v.Adoptions == 1 && len(v.Edges) == 1
	})

	// Zero devices lost: every device — including each of edge-0's — is
	// owned by the survivor and alive in its pool.
	survivor := edges[1]
	waitFor(t, "all devices on the survivor", func() bool {
		return survivor.pool.Rollup().Devices == devices
	})
	for _, c := range clients["edge-0"] {
		if owner := agg.OwnerOf(c.id); owner != "edge-1" {
			t.Fatalf("device %s owned by %q after failover, want edge-1", c.id, owner)
		}
	}

	// Conservation, post-failover: the merged view now equals the
	// survivor's sample alone, and no output frame was lost or counted
	// twice across the kill.
	waitFor(t, "merged view to re-converge on the survivor",
		viewEquals(survivor.edge.Sample()))
	v = agg.View()
	wantOutputs := int64(devices*phase1 + len(clients["edge-1"])*phase2)
	if got := v.Counters["outputs"]; got != wantOutputs {
		t.Fatalf("post-failover outputs = %d, want %d", got, wantOutputs)
	}
	if v.Devices != devices {
		t.Fatalf("post-failover view holds %d devices, want %d", v.Devices, devices)
	}

	// Replay invariant: the survivor's journal alone — its own frames, the
	// adopted devices' arrival checkpoints, the adopted baseline — rebuilds
	// the merged fleet's monitor state exactly.
	if err := survivor.jw.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := journal.OpenReader(survivor.dir)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	replayed := fleet.NewPool(fleet.Options{Shards: 4})
	defer replayed.Stop()
	if _, err := replayed.Replay(r, fleet.LightMonitorFactory()); err != nil {
		t.Fatal(err)
	}
	live, rebuilt := survivor.pool.Rollup(), replayed.Rollup()
	if rebuilt.Devices != devices {
		t.Fatalf("replay rebuilt %d devices, want %d", rebuilt.Devices, devices)
	}
	if rebuilt.Monitor != live.Monitor {
		t.Fatalf("replayed monitor rollup diverged from the live survivor:\n got: %+v\nwant: %+v",
			rebuilt.Monitor, live.Monitor)
	}
	if !reflect.DeepEqual(replayed.DeviceStats(), survivor.pool.DeviceStats()) {
		t.Fatal("per-device monitor stats diverged between live survivor and journal replay")
	}
}
