package trader_test

// End-to-end test of the durable frame journal (ISSUE 3): a fleet streams
// through an ingestion server that journals every accepted frame, the
// server is killed without any orderly journal shutdown (SIGKILL
// equivalent), the tail of the journal is torn the way a crash mid-append
// tears it — and a pool rebuilt by Pool.Replay must report exactly the
// rollup of an uninterrupted control pool that monitored the same traffic.
// Then the daemon "reboots" on the recovered pool and a client reconnects:
// it must adopt its recovered device, not be rejected as a duplicate.

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

func TestE2EJournalCrashRecovery(t *testing.T) {
	const (
		devices     = 24
		framesEach  = 30
		faultyEvery = 6 // every 6th device streams a deviating level
	)
	crashID := func(i int) string { return fmt.Sprintf("crash-%03d", i) }
	levelOf := func(i int) float64 {
		if i%faultyEvery == 0 {
			return 2.0
		}
		return 0.0
	}

	dir := t.TempDir()
	// Tiny segments force rotation mid-run: recovery must stitch the fleet
	// back together across many segment files, not just one.
	jw, err := journal.Create(dir, journal.Options{SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}

	pool := fleet.NewPool(fleet.Options{Shards: 4})
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw}
	addr := "unix:" + filepath.Join(t.TempDir(), "wal.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codec := wire.CodecBinary
			if i%2 == 1 {
				codec = wire.CodecJSON
			}
			dialE2E(t, addr, crashID(i), codec).stream(t, framesEach, levelOf(i), 10)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Crash: stop the server and pool without closing the journal writer.
	// Group commit already made every echoed frame durable — the drain
	// heartbeat each client got back doubles as a durability ack — so an
	// orderly journal shutdown must not be needed.
	srv.Close()
	ln.Close()
	pool.Stop()

	// Tear the journal's tail: a crash mid-append leaves a prefix of a
	// record — a length header promising more payload than the file holds.
	last := lastSegmentFile(t, dir)
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 2, 0, 0xde, 0xad, 0xbe, 0xef}, make([]byte, 17)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// Control pool: the identical traffic, journal-less and uninterrupted,
	// through the same factory and seeds the server used.
	factory := fleet.LightMonitorFactory()
	control := fleet.NewPool(fleet.Options{Shards: 4})
	defer control.Stop()
	discard := func(wire.Message) error { return nil }
	for i := 0; i < devices; i++ {
		id := crashID(i)
		if err := control.AddRemoteDevice(id, factory, discard); err != nil {
			t.Fatal(err)
		}
		for j := 0; j < framesEach; j++ {
			at := sim.Time(10+int64(j)*10) * sim.Millisecond
			ev := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", levelOf(i))
			if err := control.Dispatch(id, ev); err != nil {
				t.Fatal(err)
			}
		}
		hbAt := sim.Time(10+framesEach*10) * sim.Millisecond
		if err := control.AdvanceDevice(id, hbAt); err != nil {
			t.Fatal(err)
		}
	}
	if err := control.Sync(); err != nil {
		t.Fatal(err)
	}
	want := control.Rollup()

	// Reboot: rebuild a fresh pool from the journal.
	rec := fleet.NewPool(fleet.Options{Shards: 4})
	defer rec.Stop()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr, fleet.LightMonitorFactory())
	jr.Close()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !jr.Torn() {
		t.Fatal("replay did not notice the torn tail record")
	}
	if st.Devices != devices || st.Frames != devices*framesEach || st.Heartbeats != devices {
		t.Fatalf("replay stats = %s, want %d devices, %d frames, %d heartbeats",
			st, devices, devices*framesEach, devices)
	}

	// Stats conservation: the recovered fleet is indistinguishable from the
	// fleet that never crashed — device count, per-monitor counter sums,
	// dispatch totals, error reports.
	got := rec.Rollup()
	if got != want {
		t.Fatalf("recovered rollup %+v != control rollup %+v", got, want)
	}
	faulty := devices / faultyEvery
	if got.Reports != uint64(faulty) {
		t.Fatalf("recovered pool flagged %d devices, want exactly the %d faulty ones", got.Reports, faulty)
	}

	// Reboot the daemon on the recovered pool, journaling onward into the
	// same directory (Create repairs the torn tail and opens a new
	// segment). A returning client must adopt its recovered device: same
	// ID, no duplicate rejection, monitor state continued.
	jw2, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jw2.Close()
	// MaxAdvance is set tight enough that the resumed timestamps (1000ms
	// against a recovered device clock of 310ms) only fit the advance
	// window if adoption anchored it at the recovered virtual time — a
	// window still anchored at zero would refuse the reconnect as a
	// runaway jump.
	srv2 := &fleet.Server{Pool: rec, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw2, MaxAdvance: 800 * sim.Millisecond}
	defer srv2.Close()
	addr2 := "unix:" + filepath.Join(t.TempDir(), "wal2.sock")
	ln2, err := wire.Listen(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer ln2.Close()
	go srv2.Serve(ln2)

	re := dialE2E(t, addr2, crashID(1), wire.CodecBinary)
	re.stream(t, 5, 0, 1000) // timestamps continue past the recovered clock
	if t.Failed() {
		t.FailNow()
	}
	if n := rec.Size(); n != devices {
		t.Fatalf("fleet size after reconnect = %d, want %d (adopt, not add)", n, devices)
	}
	after := rec.Rollup()
	if after.Dispatched != want.Dispatched+5 {
		t.Fatalf("dispatched after reconnect = %d, want %d", after.Dispatched, want.Dispatched+5)
	}

	// Journal-mode disconnects detach rather than remove: dropping the
	// connection must keep the device (and its timeline), and the next
	// connection for the ID adopts it again — no daemon restart involved.
	re.conn.Close()
	waitFor(t, "disconnect observed", func() bool { return srv2.Stats().Disconnected == 1 })
	if n := rec.Size(); n != devices {
		t.Fatalf("fleet size after disconnect = %d, want %d (journal mode keeps devices)", n, devices)
	}
	re2 := dialE2E(t, addr2, crashID(1), wire.CodecBinary)
	defer re2.conn.Close()
	re2.stream(t, 3, 0, 1100) // resumes the same timeline, within MaxAdvance of 1050ms
	if t.Failed() {
		t.FailNow()
	}
	if n := rec.Size(); n != devices {
		t.Fatalf("fleet size after re-adoption = %d, want %d", n, devices)
	}
	if got := rec.Rollup().Dispatched; got != want.Dispatched+8 {
		t.Fatalf("dispatched after re-adoption = %d, want %d", got, want.Dispatched+8)
	}

	// And the longer journal — pre-crash segments, repaired tail, post-
	// reboot segment — still replays cleanly end to end.
	jr2, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	n := 0
	for {
		if _, err := jr2.Next(); err != nil {
			if err == io.EOF {
				break
			}
			t.Fatalf("re-replay after reboot: record %d: %v", n, err)
		}
		n++
	}
	if jr2.Torn() {
		t.Fatal("journal still torn after Create repaired it")
	}
	// Pre-crash frames and heartbeats, plus both post-reboot sessions
	// (5 frames + heartbeat, then 3 frames + heartbeat).
	wantRecords := devices*(framesEach+1) + 6 + 4
	if n != wantRecords {
		t.Fatalf("full journal holds %d records, want %d", n, wantRecords)
	}
}

// lastSegmentFile returns the newest journal segment file in dir.
func lastSegmentFile(t *testing.T, dir string) string {
	t.Helper()
	names, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil || len(names) == 0 {
		t.Fatalf("no journal segments in %s (%v)", dir, err)
	}
	return names[len(names)-1]
}
