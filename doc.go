// Package trader reproduces "Dependability for high-tech systems: an
// industry-as-laboratory approach" (Brinksma & Hooman, DATE 2008): a
// model-based run-time awareness and correction framework for high-volume
// embedded systems, together with every substrate the paper's case studies
// depend on — a TV simulator on a SoC resource model, executable timed state
// machines, spectrum-based diagnosis, mode-consistency checking, partial
// recovery, load-balancing, user-perception modelling, stress testing,
// warning prioritization and architecture-level FMEA.
//
// Beyond the paper's single-device setting, internal/fleet runs thousands
// of monitored devices concurrently on a sharded pool — the fleet scale the
// paper's high-volume premise implies — and ingests remote devices over the
// network: cmd/traderd -listen accepts concurrent SUO connections (Unix
// socket/TCP, JSON or negotiated binary codec) and monitors each as a pool
// device, with cmd/tvsim -connect as the matching fleet client.
// internal/journal makes ingestion crash-durable (write-ahead frame log,
// replayable post mortem), and internal/control closes the awareness loop:
// error reports are classified and escalated per device — tolerate, reset,
// restart as a recoverable unit, quarantine — with every recovery action
// actuated over the wire and journaled (traderd -recover).
// internal/diagnose closes the observation pipeline the same way: devices
// carry spectral flight recorders (per-heartbeat block-coverage windows),
// escalations trigger snapshot pulls from the suspect and a healthy cohort,
// and the fleet-folded program spectrum ranks the faulty code block with an
// FMEA-weighted component verdict, reproducible byte-identically from the
// journal (traderd -diagnose / -replay -diagnose).
// internal/federate scales past one daemon — and carries the paper's E7
// experiment (monitor migration between hosts) to production scale: edge
// daemons own device-ID hash ranges and stream rollup deltas to an
// aggregator serving the exact merged fleet view (traderd -edge /
// -aggregate), devices migrate live between edges via checkpoint handoff,
// and a SIGKILLed edge's devices are adopted from its journal by a
// surviving peer with byte-identical monitor state.
//
// See ARCHITECTURE.md for the concept-to-package map and the full wire
// protocol specification, README.md for the layout, DESIGN.md for the
// system inventory and experiment index, and EXPERIMENTS.md for
// paper-vs-measured results. The benchmarks in bench_test.go regenerate
// every experiment (E1–E14).
package trader
