module trader

go 1.24
