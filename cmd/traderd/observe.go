// Observability glue for traderd: structured logging, the /trace endpoint,
// process self-metrics, trace-plane metrics, pprof registration and the
// incident-bundle recorder. ARCHITECTURE.md §6 is the normative spec.

package main

import (
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	rtmetrics "runtime/metrics"
	"sync"
	"time"

	"runtime"

	"trader/internal/control"
	"trader/internal/diagnose"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/trace"
)

// processStart anchors the uptime gauge.
var processStart = time.Now()

// setupLogging installs the process-wide slog default: text (human) or
// JSON (machine) lines on stderr, per the -log-format flag.
func setupLogging(format string) error {
	var h slog.Handler
	switch format {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	case "text", "":
		h = slog.NewTextHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown -log-format %q (want text or json)", format)
	}
	slog.SetDefault(slog.New(h))
	return nil
}

// fatal is the slog replacement for log.Fatalf: one error record, exit 1.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// logfAdapter bridges the subsystems' printf-style Logf hooks onto slog,
// tagging every line with its component.
func logfAdapter(component string) func(string, ...any) {
	return func(format string, args ...any) {
		slog.Info(fmt.Sprintf(format, args...), "component", component)
	}
}

// traceHandler serves the tracer's flight-recorder contents: recent spans
// as span JSON (default) or Chrome trace-event format (?format=chrome,
// loadable in chrome://tracing / Perfetto). ?trace=<16-hex-digit id>
// restricts the dump to one trace's span chain.
func traceHandler(tr *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var spans []trace.Span
		if id := r.URL.Query().Get("trace"); id != "" {
			var tid uint64
			if _, err := fmt.Sscanf(id, "%x", &tid); err != nil {
				http.Error(w, "bad trace id", http.StatusBadRequest)
				return
			}
			spans = tr.Trace(tid)
		} else {
			spans = tr.Snapshot()
		}
		w.Header().Set("Content-Type", "application/json")
		if r.URL.Query().Get("format") == "chrome" {
			_ = trace.WriteChrome(w, spans)
			return
		}
		_ = trace.WriteJSON(w, spans)
	})
}

// registerObservability mounts the shared observability endpoints on a
// metrics mux: /trace always, /debug/pprof/* when -pprof is set.
func registerObservability(mux *http.ServeMux, tr *trace.Tracer, withPprof bool) {
	mux.Handle("/trace", traceHandler(tr))
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// writeProcessMetrics renders the process self-metrics every traderd mode
// exports: goroutines, heap, GC pause p99, open FDs and uptime — the
// "is the daemon itself healthy" row of a scrape.
func writeProcessMetrics(w io.Writer) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintln(w, "# TYPE trader_process_goroutines gauge")
	fmt.Fprintf(w, "trader_process_goroutines %d\n", runtime.NumGoroutine())
	fmt.Fprintln(w, "# TYPE trader_process_heap_bytes gauge")
	fmt.Fprintf(w, "trader_process_heap_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintln(w, "# TYPE trader_process_gc_pause_p99_seconds gauge")
	fmt.Fprintf(w, "trader_process_gc_pause_p99_seconds %g\n", gcPauseP99())
	if n, ok := openFDs(); ok {
		fmt.Fprintln(w, "# TYPE trader_process_open_fds gauge")
		fmt.Fprintf(w, "trader_process_open_fds %d\n", n)
	}
	fmt.Fprintln(w, "# TYPE trader_process_uptime_seconds gauge")
	fmt.Fprintf(w, "trader_process_uptime_seconds %g\n", time.Since(processStart).Seconds())
}

// gcPauseP99 reads the runtime's stop-the-world pause histogram and
// returns its 99th percentile in seconds (0 before the first GC).
func gcPauseP99() float64 {
	samples := []rtmetrics.Sample{{Name: "/gc/pauses:seconds"}}
	rtmetrics.Read(samples)
	if samples[0].Value.Kind() != rtmetrics.KindFloat64Histogram {
		return 0
	}
	h := samples[0].Value.Float64Histogram()
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(float64(total) * 0.99)
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen >= target {
			// Buckets[i+1] is the bucket's upper bound; the last bucket
			// may be +Inf, in which case its lower bound is the honest
			// answer.
			hi := h.Buckets[i+1]
			if hi > h.Buckets[len(h.Buckets)-2] { // +Inf guard
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// openFDs counts the process's open file descriptors via /proc (Linux);
// ok is false where /proc is absent.
func openFDs() (int, bool) {
	ents, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		return 0, false
	}
	return len(ents), true
}

// writeTraceMetrics renders the trace plane's own health on /metrics: the
// forced-ring overflow counter CI asserts stays 0, the span write count,
// and the latency exemplars — info-series carrying the trace ID of the
// frame currently exemplifying each SLO quantile, so an alert on p999 can
// link straight to /trace?trace=<id>.
func writeTraceMetrics(w io.Writer, tr *trace.Tracer, pool *fleet.Pool) {
	fmt.Fprintln(w, "# HELP trader_trace_forced_overflow_total Forced (control-plane) spans evicted from the forced ring before a snapshot saw them. Must stay 0.")
	fmt.Fprintln(w, "# TYPE trader_trace_forced_overflow_total counter")
	fmt.Fprintf(w, "trader_trace_forced_overflow_total %d\n", tr.ForcedOverflow())
	fmt.Fprintln(w, "# TYPE trader_trace_spans_written_total counter")
	fmt.Fprintf(w, "trader_trace_spans_written_total %d\n", tr.Written())
	lat := pool.Latency()
	fmt.Fprintln(w, "# TYPE trader_ingest_latency_exemplar_info gauge")
	for _, q := range []float64{0.99, 0.999} {
		if id := lat.Exemplar(q); id != 0 {
			fmt.Fprintf(w, "trader_ingest_latency_exemplar_info{quantile=\"%g\",trace_id=\"%s\"} 1\n",
				q, trace.ID(id))
		}
	}
}

// incidentRecorder returns the control.Options.OnIncident hook: when the
// ladder reaches restart (or beyond) it freezes the live half of a bundle
// on the controller goroutine — span rings, counters, ladder, ranking are
// all cheap reads — then rebuilds the deterministic half from the journal
// and writes the bundle directory off-thread. Incidents are numbered per
// device in trigger order, matching BuildIncident's journal scan.
func incidentRecorder(root, journalDir string, tr *trace.Tracer, pool *fleet.Pool, srv *fleet.Server, eng *diagnose.Engine) func(control.Action) {
	var mu sync.Mutex
	seqs := make(map[string]int)
	return func(act control.Action) {
		mu.Lock()
		seqs[act.Device]++
		seq := seqs[act.Device]
		mu.Unlock()

		ro := pool.Rollup()
		cs := srv.Stats()
		live := &trace.LiveReport{
			WrittenNS: time.Now().UnixNano(),
			Rung:      act.Rung.String(),
			Class:     act.Class.String(),
			Counters: map[string]int64{
				"shed_observations": int64(ro.ShedObservations),
				"shed_heartbeats":   int64(ro.ShedHeartbeats),
				"shed_control":      int64(ro.ShedControl),
				"credit_grants":     int64(cs.CreditGrants),
				"credit_violations": int64(cs.CreditViolations),
			},
		}
		if eng != nil {
			if res := eng.Result(5); res != nil {
				for _, rb := range res.Ranking {
					live.TopK = append(live.TopK, trace.TopSuspect{
						Block: rb.Block, Component: rb.Component, Score: rb.Score})
				}
			}
		}
		if tr != nil {
			// The device's recent spans plus every retained forced span —
			// the forced ring is fleet-wide, so keep foreign-device forced
			// spans too: the escalation's control push lives there.
			for _, s := range tr.Snapshot() {
				if s.Device == act.Device || s.Forced {
					live.Spans = append(live.Spans, trace.Export([]trace.Span{s})...)
				}
			}
		}

		go func() {
			inc := &trace.Incident{Device: act.Device, Seq: seq}
			if journalDir != "" {
				// The triggering action is journaled before this hook runs,
				// but the group-commit pipeline may still be flushing it;
				// retry briefly rather than write a truncated bundle.
				for attempt := 0; attempt < 20; attempt++ {
					r, err := journal.OpenReader(journalDir)
					if err != nil {
						break
					}
					built, berr := trace.BuildIncident(r, act.Device, seq)
					r.Close()
					if berr == nil {
						inc = built
						break
					}
					time.Sleep(25 * time.Millisecond)
				}
			}
			dir, err := trace.WriteBundle(root, inc, live)
			if err != nil {
				slog.Error("incident bundle write failed", "component", "trace",
					"device", act.Device, "seq", seq, "err", err)
				return
			}
			slog.Info("incident bundle written", "component", "trace",
				"device", act.Device, "seq", seq, "rung", act.Rung.String(), "dir", dir)
		}()
	}
}
