package main

import (
	"fmt"
	"net/http"

	"trader/internal/diagnose"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/trace"
)

// metricsHandler renders the daemon's latency-SLO plane as Prometheus text
// (exposition format 0.0.4, stdlib only): the ingest-to-dispatch latency
// histogram — aggregate and per shard, with the p50/p99/p999 the SLO is
// stated over — next to the shed tiers, the flow-control counters, the
// fleet rollup, the diagnosis plane (when -diagnose is on), the journal's
// group-commit ratio, the trace plane's health (forced-ring overflow,
// latency exemplars) and the process self-metrics. One scrape answers "is
// the fleet inside its SLO, and if not, what is it shedding?".
func metricsHandler(pool *fleet.Pool, srv *fleet.Server, jw *journal.Sharded, eng *diagnose.Engine, tr *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")

		fmt.Fprintln(w, "# HELP trader_ingest_latency_seconds Ingest-to-dispatch latency of admitted observation frames.")
		fmt.Fprintln(w, "# TYPE trader_ingest_latency_seconds histogram")
		agg := pool.Latency()
		agg.WriteProm(w, "trader_ingest_latency_seconds", "", nil)
		fmt.Fprintln(w, "# TYPE trader_ingest_shard_latency_seconds histogram")
		for i := 0; i < pool.Shards(); i++ {
			s := pool.ShardLatency(i)
			s.WriteProm(w, "trader_ingest_shard_latency_seconds", fmt.Sprintf(`shard="%d"`, i), nil)
		}
		fmt.Fprintln(w, "# TYPE trader_ingest_latency_quantile_seconds gauge")
		for _, q := range []float64{0.5, 0.99, 0.999} {
			fmt.Fprintf(w, "trader_ingest_latency_quantile_seconds{quantile=\"%g\"} %g\n",
				q, agg.Quantile(q).Seconds())
		}

		ro := pool.Rollup()
		fmt.Fprintln(w, "# HELP trader_shed_frames_total Frames refused under queue pressure, by shed tier. Control is never shed; the series exists so its flatline is monitorable.")
		fmt.Fprintln(w, "# TYPE trader_shed_frames_total counter")
		fmt.Fprintf(w, "trader_shed_frames_total{tier=\"observation\"} %d\n", ro.ShedObservations)
		fmt.Fprintf(w, "trader_shed_frames_total{tier=\"heartbeat\"} %d\n", ro.ShedHeartbeats)
		fmt.Fprintf(w, "trader_shed_frames_total{tier=\"control\"} %d\n", ro.ShedControl)

		cs := srv.Stats()
		fmt.Fprintln(w, "# TYPE trader_credit_grants_total counter")
		fmt.Fprintf(w, "trader_credit_grants_total %d\n", cs.CreditGrants)
		fmt.Fprintln(w, "# TYPE trader_credit_violations_total counter")
		fmt.Fprintf(w, "trader_credit_violations_total %d\n", cs.CreditViolations)

		fmt.Fprintf(w, "trader_fleet_devices %d\n", ro.Devices)
		fmt.Fprintf(w, "trader_fleet_frames_total %d\n", cs.Frames)
		fmt.Fprintf(w, "trader_fleet_dispatched_total %d\n", ro.Dispatched)
		fmt.Fprintf(w, "trader_fleet_comparisons_total %d\n", ro.Monitor.Comparisons)
		fmt.Fprintf(w, "trader_fleet_deviations_total %d\n", ro.Monitor.Deviations)
		fmt.Fprintf(w, "trader_fleet_reports_total %d\n", ro.Reports)
		fmt.Fprintf(w, "trader_conns_accepted_total %d\n", cs.Accepted)
		fmt.Fprintf(w, "trader_conns_rejected_total %d\n", cs.Rejected)
		fmt.Fprintf(w, "trader_conns_disconnected_total %d\n", cs.Disconnected)

		if eng != nil {
			dro := eng.Rollup()
			fmt.Fprintln(w, "# HELP trader_diagnose_dropped_total Diagnosis items shed on engine-inbox overflow. Nonzero means evidence was lost before folding.")
			fmt.Fprintln(w, "# TYPE trader_diagnose_dropped_total counter")
			fmt.Fprintf(w, "trader_diagnose_dropped_total %d\n", dro.Dropped)
			fmt.Fprintf(w, "trader_diagnose_episodes_total %d\n", dro.Episodes)
			fmt.Fprintf(w, "trader_diagnose_snapshots_total %d\n", dro.Snapshots)
			fmt.Fprintf(w, "trader_diagnose_deltas_total %d\n", dro.Deltas)
			fmt.Fprintln(w, "# TYPE trader_diagnose_windows_total counter")
			fmt.Fprintf(w, "trader_diagnose_windows_total{label=\"fail\"} %d\n", dro.FailWindows)
			fmt.Fprintf(w, "trader_diagnose_windows_total{label=\"pass\"} %d\n", dro.PassWindows)
			fmt.Fprintf(w, "trader_diagnose_malformed_total %d\n", dro.Malformed)
			fmt.Fprintf(w, "trader_diagnose_journal_errors_total %d\n", dro.JournalErrors)
		}

		if jw != nil {
			js := jw.Stats()
			fmt.Fprintf(w, "trader_journal_appends_total %d\n", js.Appends)
			fmt.Fprintf(w, "trader_journal_fsyncs_total %d\n", js.Syncs)
			fmt.Fprintf(w, "trader_journal_segments %d\n", js.Segments)
		}

		if tr != nil {
			writeTraceMetrics(w, tr, pool)
		}
		writeProcessMetrics(w)
	})
}
