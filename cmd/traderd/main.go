// Command traderd is the awareness-monitor daemon: the right-hand process of
// Fig. 2. It listens on a Unix domain socket; a System Under Observation
// (e.g. cmd/tvsim) connects and streams input/output/state events; traderd
// executes the specification model, compares, and sends error reports back
// on the same connection.
//
// With -listen it becomes the fleet ingestion daemon: it accepts many
// concurrent SUO connections (Unix socket and/or TCP, comma-separated),
// performs the Hello handshake (negotiating the JSON or binary codec per
// connection), registers each connection as a device in a sharded
// fleet.Pool, and pushes control/error frames back down each connection.
// `tvsim -connect` is the matching client. See ARCHITECTURE.md for the
// protocol.
//
// With -fleet N it instead runs an in-process simulated fleet of N
// monitored TVs on a sharded monitor pool (-shards K workers), exercising
// the fleet-scale path the ROADMAP targets: random remote-control traffic
// across the whole fleet, aggregated error reports, and a throughput
// summary.
//
// With -journal DIR the ingestion daemon writes every accepted frame to a
// durable write-ahead journal before dispatching it, and recovers existing
// journal state on boot — kill -9 the daemon and restart it, and every
// device's monitor state and fault history is rebuilt before new
// connections are admitted (reconnecting devices adopt their recovered
// monitors). With -replay DIR the daemon instead replays a journal offline
// into a fresh pool, prints the fleet rollup and exits: deterministic
// post-mortem diagnosis without the fleet attached.
//
// With -recover POLICY the awareness loop is closed: a recovery controller
// (internal/control) subscribes to the fleet's error reports, classifies
// them (deviation, silence, runaway), and escalates each misbehaving device
// — tolerate, reset its comparator, restart it as a recoverable unit,
// quarantine it — pushing the corresponding control commands down the
// device's connection and journaling every action, so -replay reconstructs
// what the controller did. A periodic recovery rollup (actions, downtime,
// FMEA criticality of the observed failure classes) joins the fleet stats.
//
// With -diagnose COEFF the fleet diagnosis plane (internal/diagnose) rides
// on the controller: whenever a device escalates past tolerate, the daemon
// pulls block-coverage snapshots from it and from a sampled healthy cohort,
// labels them fail/pass, journals the labeled evidence write-ahead, and
// folds it into a fleet-level program spectrum. Periodic rollups name the
// top suspect code block and the FMEA-weighted component verdict; -replay
// -diagnose reconstructs the identical ranking offline from the journal.
//
// With -edge upstream=ADDR,range=N/M the ingestion daemon joins a
// federation (ARCHITECTURE.md §7): it serves the devices whose IDs hash
// into range N of M (fleet.RangeOf), dials the aggregator at ADDR, and
// streams rollup deltas of everything it counts — fleet, connection,
// shed/latency, recovery and diagnosis rollups — upstream, carrying out
// live device migrations and journal adoptions the aggregator directs.
// With -aggregate the daemon is the other end: -listen accepts edge
// uplinks instead of devices, the merged fleet-wide view is logged
// periodically and served on -metrics, -ranges M fixes the hash-range
// count, -failover-seconds G directs a surviving edge to adopt a dead
// edge's journal after G seconds, and -journal DIR persists the ownership
// record so a restarted aggregator recovers its range map.
//
// Usage:
//
//	traderd [-socket /tmp/trader.sock] [-suo tv|mediaplayer] [-v]
//	traderd -listen unix:/tmp/trader-fleet.sock,tcp:127.0.0.1:7700 [-suo tv|light] [-shards 8] [-journal DIR] [-recover default] [-diagnose ochiai] [-v]
//	traderd -fleet 1000 [-shards 8] [-fleet-seconds 5] [-v]
//	traderd -replay DIR [-suo light] [-shards 8] [-diagnose ochiai] [-v]
//	traderd -listen tcp:127.0.0.1:7801 -edge upstream=tcp:127.0.0.1:7800,range=0/2 [-journal DIR]
//	traderd -aggregate -listen tcp:127.0.0.1:7800 [-ranges 2] [-failover-seconds 10] [-journal DIR] [-metrics ADDR]
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"trader/internal/control"
	"trader/internal/core"
	"trader/internal/diagnose"
	"trader/internal/exper"
	"trader/internal/federate"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/mediaplayer"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/statemachine"
	"trader/internal/trace"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

func main() {
	socket := flag.String("socket", "/tmp/trader.sock", "unix socket path (legacy single-SUO mode)")
	listen := flag.String("listen", "", "fleet ingestion addresses, comma-separated (unix:/path, tcp:host:port)")
	suo := flag.String("suo", "tv", "SUO profile: tv or mediaplayer (or light with -listen)")
	verbose := flag.Bool("v", false, "log every error report")
	fleetN := flag.Int("fleet", 0, "run an in-process fleet of N monitored TVs instead of serving a socket")
	shards := flag.Int("shards", runtime.GOMAXPROCS(0), "worker shards for -fleet/-listen modes")
	fleetSecs := flag.Int("fleet-seconds", 5, "virtual seconds of fleet operation in -fleet mode")
	statsEvery := flag.Int("stats-seconds", 10, "fleet rollup log interval in -listen mode (0: off)")
	maxAdvance := flag.Int("max-advance", 0, "largest virtual-time jump in seconds a single client frame may request in -listen mode (0: default 300)")
	journalDir := flag.String("journal", "", "write-ahead journal directory for -listen mode: journal every accepted frame, auto-recover on boot")
	replayDir := flag.String("replay", "", "replay a journal directory into a fresh pool, print the rollup, and exit")
	recoverPol := flag.String("recover", "", "recovery controller policy for -listen mode: default, aggressive or patient (empty: monitoring only)")
	diagCoeff := flag.String("diagnose", "", "fleet diagnosis coefficient for -listen mode (requires -recover; e.g. ochiai) or for -replay output; empty: off")
	diagBlocks := flag.Int("diagnose-blocks", diagnose.DefaultBlocks, "instrumented block count of the fleet's spectral recorders (must match the clients)")
	diagCohort := flag.Int("diagnose-cohort", diagnose.DefaultCohort, "healthy peers sampled per diagnosis episode")
	diagCont := flag.Bool("diagnose-continuous", false, "continuous diagnosis: fold spectrum deltas piggybacked on client heartbeats as they arrive, with per-verdict partition rankings (requires -diagnose)")
	cpSecs := flag.Int("checkpoint-seconds", 0, "write a global journal checkpoint every N seconds in -listen -journal mode, truncating covered segments (0: off)")
	creditWindow := flag.Int("credit-window", 0, "frame-credit window granted to each -listen connection; compliant clients block when it is spent, violators are disconnected (0: flow control off)")
	shed := flag.Bool("shed", false, "tiered load shedding in -listen mode: observations drop at 75% shard-queue pressure, heartbeats at 95%, control traffic never")
	metricsAddr := flag.String("metrics", "", "serve the latency-SLO plane as Prometheus text on this HTTP address in -listen mode (e.g. 127.0.0.1:9464)")
	edgeSpec := flag.String("edge", "", "federation edge uplink for -listen mode: upstream=ADDR,range=N/M — stream rollup deltas to an aggregator and accept live migrations")
	aggregate := flag.Bool("aggregate", false, "run as the federation aggregator: -listen addresses accept edge uplinks instead of devices")
	ranges := flag.Int("ranges", 2, "device-ID hash range count of the federation (-aggregate mode; must match every edge's range=N/M)")
	failoverSecs := flag.Int("failover-seconds", 10, "grace period before the aggregator directs a survivor to adopt a dead edge's journal (-aggregate mode; 0: off)")
	logFormat := flag.String("log-format", "text", "structured log output: text or json")
	traceSample := flag.Int("trace-sample", trace.DefaultSampleN, "frame-lifecycle trace sampling: 1 in N ingested frames starts a trace (control traffic is always traced; 0: sampling off)")
	incidentDir := flag.String("incident-dir", "", "write an incident bundle (spans, counters, ladder, top-K spectrum) to this directory whenever the recovery ladder reaches restart (requires -recover)")
	pprofOn := flag.Bool("pprof", false, "serve net/http/pprof under /debug/pprof/ on the -metrics listener")
	flag.Parse()

	if err := setupLogging(*logFormat); err != nil {
		fmt.Fprintf(os.Stderr, "traderd: %v\n", err)
		os.Exit(1)
	}
	if *journalDir != "" && *listen == "" {
		// Only -listen mode journals; silently accepting the flag elsewhere
		// (including -replay, which only reads a journal) would leave an
		// operator believing frames are durable when nothing is written.
		fatal("-journal requires -listen (only the ingestion daemon and the aggregator journal)")
	}
	if *pprofOn && *metricsAddr == "" {
		fatal("-pprof requires -metrics (pprof rides on the metrics listener)")
	}
	if *aggregate {
		if *listen == "" {
			fatal("-aggregate requires -listen (the addresses edge uplinks dial)")
		}
		if *edgeSpec != "" {
			fatal("-aggregate and -edge are different tiers of the federation; run them as separate processes")
		}
		obs := obsConfig{TraceSample: *traceSample, Pprof: *pprofOn}
		if err := runAggregate(*listen, *journalDir, *ranges, *failoverSecs, *statsEvery, *metricsAddr, obs, *verbose); err != nil {
			fatal("aggregate failed", "err", err)
		}
		return
	}
	if *edgeSpec != "" && *listen == "" {
		fatal("-edge requires -listen (the edge keeps ingesting devices; the uplink rides on top)")
	}
	if *replayDir != "" {
		if err := runReplay(*replayDir, *suo, *shards, *diagCoeff, *verbose); err != nil {
			fatal("replay failed", "err", err)
		}
		return
	}
	if *fleetN > 0 {
		if err := runFleet(*fleetN, *shards, *fleetSecs, *verbose); err != nil {
			fatal("fleet run failed", "err", err)
		}
		return
	}
	if *recoverPol != "" && *listen == "" {
		fatal("-recover requires -listen (the controller actuates through the ingestion server)")
	}
	if *diagCoeff != "" && *recoverPol == "" {
		fatal("-diagnose requires -recover (diagnosis pulls evidence when the controller escalates) or -replay (offline)")
	}
	if *diagCont && *diagCoeff == "" {
		fatal("-diagnose-continuous requires -diagnose (it feeds the diagnosis engine)")
	}
	if *cpSecs > 0 && *journalDir == "" {
		fatal("-checkpoint-seconds requires -journal (checkpoints are journal resume points)")
	}
	if *incidentDir != "" && *recoverPol == "" {
		fatal("-incident-dir requires -recover (incidents open when the recovery ladder escalates)")
	}
	if (*creditWindow != 0 || *shed || *metricsAddr != "") && *listen == "" {
		fatal("-credit-window, -shed and -metrics require -listen (they are ingestion-server overload controls)")
	}
	if *listen != "" {
		diag := diagConfig{Coeff: *diagCoeff, Blocks: *diagBlocks, Cohort: *diagCohort, Continuous: *diagCont}
		over := overloadConfig{CreditWindow: *creditWindow, Shed: *shed, MetricsAddr: *metricsAddr}
		obs := obsConfig{TraceSample: *traceSample, IncidentDir: *incidentDir, Pprof: *pprofOn}
		if err := runIngest(*listen, *suo, *shards, *statsEvery, *maxAdvance, *journalDir, *recoverPol, *cpSecs, diag, over, obs, *edgeSpec, *verbose); err != nil {
			fatal("ingest failed", "err", err)
		}
		return
	}

	_ = os.Remove(*socket)
	ln, err := net.Listen("unix", *socket)
	if err != nil {
		fatal("listen failed", "socket", *socket, "err", err)
	}
	defer ln.Close()
	slog.Info("monitoring SUOs", "component", "monitor", "suo", *suo, "socket", *socket)

	for {
		conn, err := ln.Accept()
		if err != nil {
			slog.Error("accept failed", "component", "monitor", "err", err)
			return
		}
		go serve(conn, *suo, *verbose)
	}
}

// monitorFactory maps an -suo profile to the per-connection monitor builder
// -listen mode hands the fleet server.
func monitorFactory(suo string) (fleet.MonitorFactory, error) {
	switch suo {
	case "light":
		return fleet.LightMonitorFactory(), nil
	case "tv", "mediaplayer":
		return func(id string, seed int64) (*sim.Kernel, *core.Monitor, error) {
			_ = seed // profile monitors are deterministic per connection
			mon, err := newMonitor(suo)
			if err != nil {
				return nil, nil, err
			}
			return mon.Kernel(), mon, nil
		}, nil
	default:
		return nil, fmt.Errorf("unknown SUO profile %q", suo)
	}
}

// profileMarker is the meta record traderd appends when it opens a journal
// for writing: a Hello frame from "traderd" itself naming the -suo monitor
// profile the frames are observed under. Pool.Replay skips Hello records,
// so the marker costs nothing at replay — but checkJournalProfile reads it
// back so a journal written under one profile cannot be silently replayed
// into monitors built from another, which would produce bogus verdicts.
func profileMarker(suo string) wire.Message {
	return wire.Message{Type: wire.TypeHello, SUO: "traderd", Target: suo}
}

// checkJournalProfile compares the journal's recorded profile (if any — the
// journal may be empty, torn at the first record, or from a build without
// markers) against the -suo profile about to monitor its frames. The
// profile reaches the journal two ways: the Hello marker traderd appends on
// every boot, and — once a checkpoint has truncated the marker away — the
// Profile tag riding on each Final shard-plane checkpoint record. The scan
// walks the journal head past checkpoint records and stops at the first
// frame. Journal corruption is deliberately not reported here: the replay
// that follows reports it with full position information.
func checkJournalProfile(dir, suo string) error {
	r, err := journal.OpenReader(dir)
	if err != nil {
		return err
	}
	defer r.Close()
	mismatch := func(written string) error {
		return fmt.Errorf("journal %s was written under -suo %s, but -suo %s is in effect; pass -suo %s to replay it faithfully",
			dir, written, suo, written)
	}
	for {
		m, err := r.Next()
		if err != nil {
			return nil
		}
		switch {
		case m.Type == wire.TypeCheckpoint:
			if cp := m.Checkpoint; cp != nil && cp.Profile != "" && cp.Profile != suo {
				return mismatch(cp.Profile)
			}
		case m.Type == wire.TypeHello && m.SUO == "traderd" && m.Target != "":
			if m.Target != suo {
				return mismatch(m.Target)
			}
			return nil
		default:
			// First real frame with no marker before it: a markerless
			// journal from an old build. Nothing to check.
			return nil
		}
	}
}

// diagConfig carries the -diagnose knobs into ingest mode.
type diagConfig struct {
	Coeff      string
	Blocks     int
	Cohort     int
	Continuous bool
}

// overloadConfig carries the overload-control knobs into ingest mode:
// credit-based flow control, tiered load shedding and the /metrics
// latency-SLO endpoint.
type overloadConfig struct {
	CreditWindow int
	Shed         bool
	MetricsAddr  string
}

// obsConfig carries the observability knobs: trace sampling, the incident
// bundle directory and the pprof toggle.
type obsConfig struct {
	TraceSample int
	IncidentDir string
	Pprof       bool
}

// Shed-tier thresholds -shed enables: observations (tier 1) drop first,
// heartbeats (tier 2) only near saturation, control traffic (tier 3) never.
const (
	shedObservationsAt = 0.75
	shedHeartbeatsAt   = 0.95
)

// runReplay is offline post-mortem mode: rebuild a fleet pool from a frame
// journal — no listeners, no clients — print what the fleet had observed
// and detected at the moment of the last durable frame, and exit. With
// -diagnose it additionally reconstructs the fleet diagnosis from the
// journal's labeled evidence records: the exact ranking the live engine
// held, byte for byte.
func runReplay(dir, suo string, shards int, diagCoeff string, verbose bool) error {
	factory, err := monitorFactory(suo)
	if err != nil {
		return err
	}
	pool := fleet.NewPool(fleet.Options{Shards: shards})
	defer pool.Stop()
	if verbose {
		pool.OnReport(func(device string, r wire.ErrorReport) {
			slog.Info("error report", "component", "replay", "device", device, "report", r.String())
		})
	}
	if _, err := recoverJournal(dir, suo, pool, factory); err != nil {
		return err
	}
	ro := pool.Rollup()
	slog.Info("replay rollup", "component", "replay",
		"devices", ro.Devices, "dispatched", ro.Dispatched,
		"comparisons", ro.Monitor.Comparisons, "deviations", ro.Monitor.Deviations,
		"reports", ro.Reports)
	if diagCoeff != "" {
		coeff, ok := spectrum.CoefficientByName(diagCoeff)
		if !ok {
			return fmt.Errorf("unknown coefficient %q", diagCoeff)
		}
		r, err := journal.OpenReader(dir)
		if err != nil {
			return err
		}
		defer r.Close()
		res, st, err := diagnose.Replay(r, coeff, 10)
		if err != nil {
			return err
		}
		if res == nil {
			slog.Info("journal holds no diagnosis evidence", "component", "replay")
			return nil
		}
		slog.Info("replayed diagnosis", "component", "replay",
			"snapshots", st.Snapshots, "deltas", st.Deltas,
			"windows", st.Windows, "skipped", st.Skipped, "result", res.String())
	}
	return nil
}

// recoverJournal rebuilds pool state from the journal at dir — the one
// recovery sequence shared by -replay (offline post-mortem) and -journal
// (recovery on daemon boot): profile-mismatch check, replay through the
// factory, and a logged summary with the torn-tail note.
func recoverJournal(dir, suo string, pool *fleet.Pool, factory fleet.MonitorFactory) (fleet.ReplayStats, error) {
	var st fleet.ReplayStats
	if err := checkJournalProfile(dir, suo); err != nil {
		return st, err
	}
	r, err := journal.OpenReader(dir)
	if err != nil {
		return st, err
	}
	defer r.Close()
	start := time.Now()
	if st, err = pool.Replay(r, factory); err != nil {
		return st, err
	}
	if st.Frames+st.Heartbeats+st.Checkpoints > 0 {
		note := ""
		if r.Torn() {
			note = " (torn tail record discarded — crash mid-append)"
		}
		if n := r.SegmentsSkipped(); n > 0 {
			note += fmt.Sprintf(" (%d fully-checkpointed segments skipped)", n)
		}
		slog.Info("journal replayed", "component", "journal",
			"stats", fmt.Sprint(st), "dir", dir, "took", time.Since(start).String(), "note", note)
	}
	return st, nil
}

// runIngest is the networked fleet daemon: every accepted connection is one
// remote SUO monitored as a device of a single sharded pool. With a journal
// directory it is also crash-durable: existing journal state is recovered
// into the pool before any listener opens, and every accepted frame is
// journaled write-ahead from then on. With a -recover policy the awareness
// loop is closed: a recovery controller escalates each device's error
// reports (tolerate → reset → restart → quarantine), actuates through the
// server's control pushes, and journals every action. With -diagnose the
// diagnosis plane additionally pulls coverage snapshots from escalated
// devices and healthy cohorts, folds them into a fleet-level spectrum and
// logs periodic top-suspect rollups.
func runIngest(addrs, suo string, shards, statsEvery, maxAdvance int, journalDir, recoverPol string, cpSecs int, diag diagConfig, over overloadConfig, obs obsConfig, edgeSpec string, verbose bool) error {
	factory, err := monitorFactory(suo)
	if err != nil {
		return err
	}
	// Saturate rather than convert blindly: a huge flag value (an operator
	// disabling the bound) must not wrap negative and silently fall back
	// to the 300s default.
	adv := sim.Time(math.MaxInt64)
	if int64(maxAdvance) <= math.MaxInt64/int64(sim.Second) {
		adv = sim.Time(maxAdvance) * sim.Second
	}
	// The frame-lifecycle tracer is always on: 1-in-N sampling on the
	// ingest path, forced recording for control traffic (§6.2).
	tracer := trace.New(trace.Options{Shards: shards, SampleN: obs.TraceSample})
	pool := fleet.NewPool(fleet.Options{Shards: shards, Tracer: tracer})
	defer pool.Stop()
	srv := &fleet.Server{
		Pool:         pool,
		Factory:      factory,
		HelloTimeout: 10 * time.Second,
		MaxAdvance:   adv,
		CreditWindow: over.CreditWindow,
		Tracer:       tracer,
	}
	if over.Shed {
		srv.ShedObservationsAt = shedObservationsAt
		srv.ShedHeartbeatsAt = shedHeartbeatsAt
		slog.Info("load shedding on", "component", "ingest",
			"observations_at", shedObservationsAt, "heartbeats_at", shedHeartbeatsAt)
	}
	if over.CreditWindow > 0 {
		slog.Info("flow control on", "component", "ingest", "credit_window", over.CreditWindow)
	}
	var jw *journal.Sharded
	if journalDir != "" {
		// Recover before listening: devices must carry their pre-crash
		// monitor state before their connections come back.
		if _, err := recoverJournal(journalDir, suo, pool, factory); err != nil {
			return fmt.Errorf("recovering journal %s: %w", journalDir, err)
		}
		// One journal stream per pool shard: each stream group-commits on
		// its own fsync pipeline, so the fleet's append traffic no longer
		// serialises behind a single queue. Any flat pre-sharding segments
		// in the directory root were replayed above and stay readable.
		if jw, err = journal.CreateSharded(journalDir, pool.Shards(), journal.Options{}); err != nil {
			return err
		}
		defer jw.Close()
		if err := jw.AppendShard(0, profileMarker(suo)); err != nil {
			return err
		}
		srv.Journal = jw
		slog.Info("journaling accepted frames", "component", "journal",
			"dir", journalDir, "streams", jw.Shards())
	}
	if verbose {
		srv.Logf = logfAdapter("ingest")
		pool.OnReport(func(device string, r wire.ErrorReport) {
			slog.Info("error report", "component", "fleet", "device", device, "report", r.String())
		})
	}
	var eng *diagnose.Engine
	if diag.Coeff != "" {
		coeff, ok := spectrum.CoefficientByName(diag.Coeff)
		if !ok {
			return fmt.Errorf("unknown coefficient %q", diag.Coeff)
		}
		opts := diagnose.Options{Requester: srv, Coeff: coeff, Blocks: diag.Blocks,
			Cohort: diag.Cohort, Continuous: diag.Continuous, Tracer: tracer}
		if jw != nil {
			opts.Journal = jw
		}
		if verbose {
			opts.Logf = logfAdapter("diagnosis")
		}
		eng = diagnose.Attach(pool, opts)
		defer eng.Close()
		srv.OnSnapshot = eng.HandleSnapshot
		mode := "episodic pulls"
		if diag.Continuous {
			srv.OnSpectrumDelta = eng.HandleSpectrumDelta
			mode = "continuous heartbeat deltas + episodic pulls"
		}
		slog.Info("fleet diagnosis on", "component", "diagnosis",
			"coeff", coeff.Name, "blocks", diag.Blocks, "cohort", diag.Cohort, "mode", mode)
		if journalDir != "" {
			// Warm-start from the journal's labeled evidence, so the live
			// ranking resumes where the pre-restart engine stopped and a
			// later -replay -diagnose still matches it byte for byte.
			r, err := journal.OpenReader(journalDir)
			if err != nil {
				return err
			}
			n, err := eng.Recover(r)
			r.Close()
			if err != nil {
				return err
			}
			if n > 0 {
				slog.Info("recovered diagnosis evidence", "component", "diagnosis",
					"records", n, "dir", journalDir)
			}
		}
	}
	if over.MetricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", metricsHandler(pool, srv, jw, eng, tracer))
		registerObservability(mux, tracer, obs.Pprof)
		msrv := &http.Server{Addr: over.MetricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				slog.Error("metrics listener failed", "component", "metrics", "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("serving metrics and traces", "component", "metrics",
			"addr", over.MetricsAddr, "pprof", obs.Pprof)
	}
	var ctl *control.Controller
	if recoverPol != "" {
		pol, err := control.PolicyByName(recoverPol)
		if err != nil {
			return err
		}
		opts := control.Options{Actuator: srv, Policy: pol}
		if jw != nil {
			opts.Journal = jw
		}
		if verbose {
			opts.Logf = logfAdapter("recovery")
		}
		if eng != nil {
			opts.OnEscalate = eng.HandleAction
		}
		if obs.IncidentDir != "" {
			opts.OnIncident = incidentRecorder(obs.IncidentDir, journalDir, tracer, pool, srv, eng)
			slog.Info("incident bundles on", "component", "trace", "dir", obs.IncidentDir)
		}
		ctl = control.Attach(pool, opts)
		defer ctl.Close()
		srv.OnAck = ctl.HandleAck
		slog.Info("recovery controller on", "component", "recovery",
			"policy", pol.Name, "tolerate", pol.Tolerate, "resets", pol.Resets,
			"restarts", pol.Restarts, "restart_latency", pol.RestartLatency.String())
		if journalDir != "" {
			// Resume the ladder from the journal's newest control-plane
			// checkpoint, so escalation history survives the restart.
			r, err := journal.OpenReader(journalDir)
			if err != nil {
				return err
			}
			found, err := ctl.Recover(r)
			r.Close()
			if err != nil {
				return err
			}
			if found {
				slog.Info("recovered controller checkpoint", "component", "recovery",
					"dir", journalDir, "rollup", fmt.Sprint(ctl.Rollup()))
			}
		}
	}
	if cpSecs > 0 && jw != nil {
		cper := &fleet.Checkpointer{Pool: pool, Journal: jw, Profile: suo}
		if ctl != nil {
			cper.Planes = append(cper.Planes, ctl.Checkpoint)
		}
		if eng != nil {
			cper.Planes = append(cper.Planes, eng.Checkpoint)
		}
		if verbose {
			cper.Logf = logfAdapter("checkpoint")
		}
		cpDone := make(chan struct{})
		defer close(cpDone)
		go cper.Run(time.Duration(cpSecs)*time.Second, cpDone)
		slog.Info("checkpointing fleet state", "component", "checkpoint", "every_seconds", cpSecs)
	}
	if edgeSpec != "" {
		e := &federate.Edge{
			Sample:  federate.PoolSampler(pool, srv),
			Pool:    pool,
			Factory: factory,
			Tracer:  tracer,
		}
		if jw != nil {
			e.Journal = jw
		}
		stopEdge, err := startEdge(edgeSpec, journalDir, e, ctl, eng)
		if err != nil {
			return err
		}
		defer stopEdge()
	}

	errc := make(chan error, 8)
	var listeners []net.Listener
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if network, path, err := wire.SplitAddr(addr); err == nil && network == "unix" {
			_ = os.Remove(path)
		}
		ln, err := wire.Listen(addr)
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return err
		}
		listeners = append(listeners, ln)
		slog.Info("ingesting fleet SUOs", "component", "ingest",
			"addr", addr, "shards", pool.Shards(), "suo", suo)
		go func() { errc <- srv.Serve(ln) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(time.Duration(max(statsEvery, 1)) * time.Second)
	if statsEvery <= 0 {
		ticker.Stop()
	}
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			ro := pool.Rollup()
			cs := srv.Stats()
			slog.Info("fleet rollup", "component", "fleet",
				"devices", ro.Devices, "frames", cs.Frames, "dispatched", ro.Dispatched,
				"comparisons", ro.Monitor.Comparisons, "deviations", ro.Monitor.Deviations,
				"reports", ro.Reports, "accepted", cs.Accepted, "rejected", cs.Rejected,
				"disconnected", cs.Disconnected)
			if ro.ShedObservations+ro.ShedHeartbeats+cs.CreditGrants+cs.CreditViolations > 0 {
				lat := pool.Latency()
				slog.Info("overload rollup", "component", "ingest",
					"shed_observations", ro.ShedObservations, "shed_heartbeats", ro.ShedHeartbeats,
					"credit_grants", cs.CreditGrants, "credit_violations", cs.CreditViolations,
					"latency_p50", lat.Quantile(0.5).String(), "latency_p99", lat.Quantile(0.99).String(),
					"latency_p999", lat.Quantile(0.999).String())
			}
			if ctl != nil {
				cro := ctl.Rollup()
				slog.Info("recovery rollup", "component", "recovery", "rollup", fmt.Sprint(cro))
				if crit := control.Criticality(cro); len(crit) > 0 {
					slog.Info("most critical failure class", "component", "recovery",
						"class", crit[0].Component, "rpn", crit[0].RPN)
				}
			}
			if eng != nil {
				dro := eng.Rollup()
				slog.Info("diagnosis rollup", "component", "diagnosis", "rollup", fmt.Sprint(dro))
				if dro.Failures > 0 {
					if res := eng.Result(3); len(res.Ranking) > 0 && len(res.Verdict) > 0 {
						top := res.Ranking[0]
						slog.Info("top suspect", "component", "diagnosis",
							"block", top.Block, "suspect_component", top.Component,
							"score", top.Score, "verdict", res.Verdict[0].Component)
					}
				}
			}
		case sig := <-sigc:
			slog.Info("draining fleet", "component", "ingest", "signal", sig.String())
			srv.Close()
			for _, ln := range listeners {
				ln.Close()
			}
			ro := pool.Rollup()
			cs := srv.Stats()
			slog.Info("final fleet rollup", "component", "fleet",
				"frames", cs.Frames, "comparisons", ro.Monitor.Comparisons,
				"reports", ro.Reports, "connections", cs.Accepted)
			if ro.ShedObservations+ro.ShedHeartbeats+cs.CreditGrants+cs.CreditViolations > 0 {
				lat := pool.Latency()
				slog.Info("final overload rollup", "component", "ingest",
					"shed_observations", ro.ShedObservations, "shed_heartbeats", ro.ShedHeartbeats,
					"shed_control", ro.ShedControl, "credit_grants", cs.CreditGrants,
					"credit_violations", cs.CreditViolations,
					"latency_p50", lat.Quantile(0.5).String(), "latency_p99", lat.Quantile(0.99).String(),
					"latency_p999", lat.Quantile(0.999).String())
			}
			if ctl != nil {
				slog.Info("final recovery rollup", "component", "recovery", "rollup", fmt.Sprint(ctl.Rollup()))
			}
			if eng != nil {
				slog.Info("final diagnosis rollup", "component", "diagnosis", "rollup", fmt.Sprint(eng.Rollup()))
				if res := eng.Result(10); res.Failures > 0 {
					slog.Info("final diagnosis ranking", "component", "diagnosis", "ranking", res.String())
				}
			}
			if jw != nil {
				js := jw.Stats()
				slog.Info("journal totals", "component", "journal",
					"appends", js.Appends, "fsync_batches", js.Syncs, "segments", js.Segments)
			}
			return nil
		case err := <-errc:
			if err != nil && err != fleet.ErrServerClosed {
				srv.Close()
				return err
			}
		}
	}
}

// runFleet drives an in-process fleet of monitored TVs: power every set on,
// then stream random remote-control presses to random devices while virtual
// time advances, and report the fleet rollup.
func runFleet(n, shards, seconds int, verbose bool) error {
	pool := fleet.NewPool(fleet.Options{Shards: shards})
	defer pool.Stop()
	slog.Info("fleet mode", "component", "fleet", "tvs", n, "shards", shards, "virtual_seconds", seconds)

	// The observable set is the reference TV configuration the experiments
	// use, so socket-mode, fleet-mode and E1–E13 monitors judge alike.
	factory := fleet.TVFactory(tvsim.Config{}, exper.TVObservables())
	for i := 0; i < n; i++ {
		if err := pool.AddDevice(fleet.DeviceID(i), int64(i)+1, factory); err != nil {
			return err
		}
	}
	if verbose {
		pool.OnReport(func(device string, r wire.ErrorReport) {
			slog.Info("error report", "component", "fleet", "device", device, "report", r.String())
		})
	}
	if err := pool.Broadcast(fleet.KeyEvent(tvsim.KeyPower)); err != nil {
		return err
	}
	keys := tvsim.AllKeys()
	rng := sim.NewKernel(42).Rand() // deterministic workload
	start := time.Now()
	// Each round: a burst of targeted presses to random devices, then 100ms
	// of virtual time fleet-wide.
	for round := 0; round < seconds*10; round++ {
		batch := make([]fleet.Targeted, 0, n/10+1)
		for j := 0; j < n/10+1; j++ {
			dev := fleet.DeviceID(rng.Intn(n))
			key := keys[rng.Intn(len(keys))]
			batch = append(batch, fleet.Targeted{Device: dev, Event: fleet.KeyEvent(key)})
		}
		if err := pool.DispatchBatch(batch); err != nil {
			return err
		}
		if err := pool.Advance(100 * sim.Millisecond); err != nil {
			return err
		}
	}
	wall := time.Since(start)
	ro := pool.Rollup()
	slog.Info("fleet done", "component", "fleet",
		"took", wall.String(), "devices", ro.Devices, "dispatched", ro.Dispatched,
		"dispatch_rate", float64(ro.Dispatched)/wall.Seconds(),
		"comparisons", ro.Monitor.Comparisons, "deviations", ro.Monitor.Deviations,
		"reports", ro.Reports)
	return nil
}

// newMonitor builds the monitor for the chosen SUO profile. Each connection
// gets its own monitor and virtual clock, driven by the SUO's event
// timestamps.
func newMonitor(suo string) (*core.Monitor, error) {
	k := sim.NewKernel(1)
	var model *statemachine.Model
	var cfg core.Configuration
	switch suo {
	case "tv":
		model = tvsim.BuildSpecModel(k, tvsim.Config{})
		tvsim.MirrorQuality(model)
		cfg = exper.TVObservables()
	case "mediaplayer":
		model = mediaplayer.BuildSpecModel(k, mediaplayer.Config{})
		cfg = core.Configuration{Observables: []core.Observable{
			{Name: "fps", EventName: "av", ValueName: "fps", ModelVar: "fps",
				Threshold: 5, Tolerance: 1, EnableVar: "playing", MaxSilence: 500 * sim.Millisecond},
			{Name: "av-drift", EventName: "av", ValueName: "drift", ModelVar: "drift",
				Threshold: 80, Tolerance: 1, EnableVar: "playing"},
		}}
	default:
		return nil, fmt.Errorf("unknown SUO profile %q", suo)
	}
	mon, err := core.NewMonitor(k, model, cfg)
	if err != nil {
		return nil, err
	}
	if err := mon.Start(); err != nil {
		return nil, err
	}
	return mon, nil
}

func serve(conn net.Conn, suo string, verbose bool) {
	defer conn.Close()
	mon, err := newMonitor(suo)
	if err != nil {
		slog.Error("monitor setup failed", "component", "monitor", "err", err)
		return
	}
	if verbose {
		mon.OnError(func(r wire.ErrorReport) {
			slog.Info("error report", "component", "monitor", "report", r.String())
		})
	}
	wc := wire.NewConn(conn)
	if err := mon.ServeConn(wc); err != nil {
		slog.Info("connection ended", "component", "monitor", "err", err)
	}
	st := mon.Stats()
	slog.Info("session done", "component", "monitor",
		"inputs", st.InputsSeen, "outputs", st.OutputsSeen,
		"comparisons", st.Comparisons, "errors", st.Errors)
}
