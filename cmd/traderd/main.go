// Command traderd is the awareness-monitor daemon: the right-hand process of
// Fig. 2. It listens on a Unix domain socket; a System Under Observation
// (e.g. cmd/tvsim) connects and streams input/output/state events; traderd
// executes the specification model, compares, and sends error reports back
// on the same connection.
//
// Usage:
//
//	traderd [-socket /tmp/trader.sock] [-suo tv|mediaplayer] [-v]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"

	"trader/internal/core"
	"trader/internal/mediaplayer"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

func main() {
	socket := flag.String("socket", "/tmp/trader.sock", "unix socket path")
	suo := flag.String("suo", "tv", "SUO profile: tv or mediaplayer")
	verbose := flag.Bool("v", false, "log every error report")
	flag.Parse()

	_ = os.Remove(*socket)
	ln, err := net.Listen("unix", *socket)
	if err != nil {
		log.Fatalf("traderd: listen: %v", err)
	}
	defer ln.Close()
	log.Printf("traderd: monitoring %q SUOs on %s", *suo, *socket)

	for {
		conn, err := ln.Accept()
		if err != nil {
			log.Printf("traderd: accept: %v", err)
			return
		}
		go serve(conn, *suo, *verbose)
	}
}

// newMonitor builds the monitor for the chosen SUO profile. Each connection
// gets its own monitor and virtual clock, driven by the SUO's event
// timestamps.
func newMonitor(suo string) (*core.Monitor, error) {
	k := sim.NewKernel(1)
	var model *statemachine.Model
	var cfg core.Configuration
	switch suo {
	case "tv":
		model = tvsim.BuildSpecModel(k, tvsim.Config{})
		model.OnConfig(func(region, leaf string) {
			if region == "power" {
				model.SetVar("quality", map[string]float64{"on": 1}[leaf])
			}
		})
		cfg = core.Configuration{Observables: []core.Observable{
			{Name: "audio-volume", EventName: "audio", ValueName: "volume", ModelVar: "volume", Threshold: 0.5, Tolerance: 1},
			{Name: "channel", EventName: "screen", ValueName: "channel", ModelVar: "channel"},
			{Name: "teletext-visible", EventName: "screen", ValueName: "teletext", ModelVar: "teletext"},
			{Name: "teletext-fresh", EventName: "teletext", ValueName: "fresh", ModelVar: "teletextFresh", Tolerance: 2, EnableVar: "teletext"},
			{Name: "frame-quality", EventName: "frame", ValueName: "quality", ModelVar: "quality", Threshold: 0.3, Tolerance: 3, EnableVar: "power",
				MaxSilence: 200 * sim.Millisecond},
			{Name: "swivel-angle", EventName: "swivel", ValueName: "angle", ModelVar: "swivelTarget", Threshold: 0.5, Tolerance: 60},
		}}
	case "mediaplayer":
		model = mediaplayer.BuildSpecModel(k, mediaplayer.Config{})
		cfg = core.Configuration{Observables: []core.Observable{
			{Name: "fps", EventName: "av", ValueName: "fps", ModelVar: "fps",
				Threshold: 5, Tolerance: 1, EnableVar: "playing", MaxSilence: 500 * sim.Millisecond},
			{Name: "av-drift", EventName: "av", ValueName: "drift", ModelVar: "drift",
				Threshold: 80, Tolerance: 1, EnableVar: "playing"},
		}}
	default:
		return nil, fmt.Errorf("unknown SUO profile %q", suo)
	}
	mon, err := core.NewMonitor(k, model, cfg)
	if err != nil {
		return nil, err
	}
	if err := mon.Start(); err != nil {
		return nil, err
	}
	return mon, nil
}

func serve(conn net.Conn, suo string, verbose bool) {
	defer conn.Close()
	mon, err := newMonitor(suo)
	if err != nil {
		log.Printf("traderd: %v", err)
		return
	}
	if verbose {
		mon.OnError(func(r wire.ErrorReport) { log.Printf("traderd: %s", r) })
	}
	wc := wire.NewConn(conn)
	if err := mon.ServeConn(wc); err != nil {
		log.Printf("traderd: connection ended: %v", err)
	}
	st := mon.Stats()
	log.Printf("traderd: session done: %d inputs, %d outputs, %d comparisons, %d errors",
		st.InputsSeen, st.OutputsSeen, st.Comparisons, st.Errors)
}
