package main

import (
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trader/internal/control"
	"trader/internal/diagnose"
	"trader/internal/federate"
	"trader/internal/journal"
	"trader/internal/metrics"
	"trader/internal/wire"
)

// parseEdgeSpec parses the -edge flag: "upstream=ADDR,range=N/M" — the
// aggregator address and this edge's claimed hash range (fleet.RangeOf over
// M ranges equals N for every device it should serve).
func parseEdgeSpec(spec string) (upstream string, rng, of int, err error) {
	bad := func(why string) (string, int, int, error) {
		return "", 0, 0, fmt.Errorf("-edge %q: %s (want upstream=ADDR,range=N/M)", spec, why)
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return bad("missing '='")
		}
		switch k {
		case "upstream":
			upstream = v
		case "range":
			n, m, ok := strings.Cut(v, "/")
			if !ok {
				return bad("range is not N/M")
			}
			if rng, err = strconv.Atoi(n); err != nil {
				return bad("bad range index")
			}
			if of, err = strconv.Atoi(m); err != nil {
				return bad("bad range count")
			}
		default:
			return bad(fmt.Sprintf("unknown key %q", k))
		}
	}
	if upstream == "" {
		return bad("missing upstream")
	}
	if of <= 0 || rng < 0 || rng >= of {
		return bad("range index out of bounds")
	}
	return upstream, rng, of, nil
}

// startEdge layers the federation uplink on an ingest daemon: the pool and
// server keep serving devices exactly as before; the Edge streams their
// rollup deltas upstream and carries out migrations. The returned stop
// function ends the uplink.
func startEdge(spec, journalDir string, e *federate.Edge, ctl *control.Controller, eng *diagnose.Engine) (func(), error) {
	upstream, rng, of, err := parseEdgeSpec(spec)
	if err != nil {
		return nil, err
	}
	e.ID = fmt.Sprintf("edge-%d", rng)
	e.Upstream = upstream
	e.Range, e.Of = rng, of
	e.JournalDir = journalDir
	e.Logf = log.Printf
	base := e.Sample
	// The delta carries the control and diagnosis planes' rollups next to
	// the fleet counters — all order-independent folds, so the aggregator's
	// sums stay exact.
	e.Sample = func() federate.Sample {
		s := base()
		if ctl != nil {
			cro := ctl.Rollup()
			s.Counters["recovery_reports"] = int64(cro.Reports)
			s.Counters["recovery_resets"] = int64(cro.Resets)
			s.Counters["recovery_restarts"] = int64(cro.Restarts)
			s.Counters["recovery_quarantines"] = int64(cro.Quarantines)
		}
		if eng != nil {
			dro := eng.Rollup()
			s.Counters["diagnosis_snapshots"] = int64(dro.Snapshots)
			s.Counters["diagnosis_fail_windows"] = int64(dro.FailWindows)
			s.Counters["diagnosis_pass_windows"] = int64(dro.PassWindows)
		}
		return s
	}
	done := make(chan struct{})
	go e.Run(done)
	log.Printf("traderd: edge uplink to %s as %s (range %d/%d)", upstream, e.ID, rng, of)
	return func() { close(done) }, nil
}

// runAggregate is federation-aggregator mode: the -listen addresses accept
// edge uplinks (RoleEdge Hellos) instead of devices, the merged fleet-wide
// view is logged every -stats-seconds and served on -metrics, and -journal
// persists the ownership record so a restarted aggregator recovers its
// range map (credited totals re-feed themselves through resume baselines).
func runAggregate(addrs, journalDir string, ranges, failoverSecs, statsEvery int, metricsAddr string, verbose bool) error {
	agg := &federate.Aggregator{
		Ranges:   ranges,
		Failover: time.Duration(failoverSecs) * time.Second,
		Logf:     log.Printf,
	}
	if journalDir != "" {
		// Recover the ownership journal before listening, then append to it.
		if r, err := journal.OpenReader(journalDir); err == nil {
			n, err := agg.Recover(r)
			r.Close()
			if err != nil {
				return fmt.Errorf("recovering ownership journal %s: %w", journalDir, err)
			}
			if n > 0 {
				log.Printf("traderd: aggregator: recovered %d ownership records from %s", n, journalDir)
			}
		}
		jw, err := journal.Create(journalDir, journal.Options{})
		if err != nil {
			return err
		}
		defer jw.Close()
		agg.Journal = jw
		log.Printf("traderd: aggregator: journaling ownership changes to %s", journalDir)
	}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", federationMetricsHandler(agg))
		msrv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Printf("traderd: metrics: %v", err)
			}
		}()
		defer msrv.Close()
		log.Printf("traderd: aggregator: serving merged fleet view on http://%s/metrics", metricsAddr)
	}

	errc := make(chan error, 8)
	var listeners []net.Listener
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if network, path, err := wire.SplitAddr(addr); err == nil && network == "unix" {
			_ = os.Remove(path)
		}
		ln, err := wire.Listen(addr)
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return err
		}
		listeners = append(listeners, ln)
		log.Printf("traderd: aggregating edge uplinks on %s (%d ranges, failover after %ds)",
			addr, ranges, failoverSecs)
		go func() { errc <- agg.Serve(ln) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(time.Duration(max(statsEvery, 1)) * time.Second)
	if statsEvery <= 0 {
		ticker.Stop()
	}
	defer ticker.Stop()
	logView := func(prefix string) {
		v := agg.View()
		live := 0
		for _, e := range v.Edges {
			if e.Live {
				live++
			}
		}
		log.Printf("traderd: %s: %d devices across %d edges (%d live), %d outputs, %d deviations, %d reports; %d migrations, %d adoptions, %d handoffs",
			prefix, v.Devices, len(v.Edges), live,
			v.Counters["outputs"], v.Counters["deviations"], v.Counters["reports"],
			v.Migrations, v.Adoptions, v.Handoffs)
	}
	for {
		select {
		case <-ticker.C:
			logView("federation")
		case sig := <-sigc:
			log.Printf("traderd: %v: stopping aggregator", sig)
			agg.Close()
			logView("federation final")
			return nil
		case err := <-errc:
			if err != nil {
				agg.Close()
				return err
			}
		}
	}
}

// federationMetricsHandler renders the aggregator's merged view as
// Prometheus text: the fleet-wide counter folds, the per-edge accounts
// (labelled by edge), and the federation's own lifecycle counters.
func federationMetricsHandler(agg *federate.Aggregator) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		v := agg.View()
		fmt.Fprintln(w, "# HELP trader_federation Fleet-wide counter folds merged from every edge's rollup deltas.")
		fmt.Fprintf(w, "trader_federation_devices %d\n", v.Devices)
		metrics.WritePromCounters(w, "trader_federation", "", v.Counters)
		for _, e := range v.Edges {
			live := 0
			if e.Live {
				live = 1
			}
			label := fmt.Sprintf("edge=%q", e.ID)
			fmt.Fprintf(w, "trader_federation_edge_live{%s} %d\n", label, live)
			fmt.Fprintf(w, "trader_federation_edge_devices{%s} %d\n", label, e.Devices)
			metrics.WritePromCounters(w, "trader_federation_edge", label, e.Counters)
		}
		fmt.Fprintf(w, "trader_federation_migrations_total %d\n", v.Migrations)
		fmt.Fprintf(w, "trader_federation_adoptions_total %d\n", v.Adoptions)
		fmt.Fprintf(w, "trader_federation_handoffs_total %d\n", v.Handoffs)
	})
}
