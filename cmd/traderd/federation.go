package main

import (
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trader/internal/control"
	"trader/internal/diagnose"
	"trader/internal/federate"
	"trader/internal/journal"
	"trader/internal/metrics"
	"trader/internal/trace"
	"trader/internal/wire"
)

// parseEdgeSpec parses the -edge flag: "upstream=ADDR,range=N/M" — the
// aggregator address and this edge's claimed hash range (fleet.RangeOf over
// M ranges equals N for every device it should serve).
func parseEdgeSpec(spec string) (upstream string, rng, of int, err error) {
	bad := func(why string) (string, int, int, error) {
		return "", 0, 0, fmt.Errorf("-edge %q: %s (want upstream=ADDR,range=N/M)", spec, why)
	}
	for _, part := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return bad("missing '='")
		}
		switch k {
		case "upstream":
			upstream = v
		case "range":
			n, m, ok := strings.Cut(v, "/")
			if !ok {
				return bad("range is not N/M")
			}
			if rng, err = strconv.Atoi(n); err != nil {
				return bad("bad range index")
			}
			if of, err = strconv.Atoi(m); err != nil {
				return bad("bad range count")
			}
		default:
			return bad(fmt.Sprintf("unknown key %q", k))
		}
	}
	if upstream == "" {
		return bad("missing upstream")
	}
	if of <= 0 || rng < 0 || rng >= of {
		return bad("range index out of bounds")
	}
	return upstream, rng, of, nil
}

// startEdge layers the federation uplink on an ingest daemon: the pool and
// server keep serving devices exactly as before; the Edge streams their
// rollup deltas upstream and carries out migrations. The returned stop
// function ends the uplink.
func startEdge(spec, journalDir string, e *federate.Edge, ctl *control.Controller, eng *diagnose.Engine) (func(), error) {
	upstream, rng, of, err := parseEdgeSpec(spec)
	if err != nil {
		return nil, err
	}
	e.ID = fmt.Sprintf("edge-%d", rng)
	e.Upstream = upstream
	e.Range, e.Of = rng, of
	e.JournalDir = journalDir
	e.Logf = logfAdapter("edge")
	base := e.Sample
	// The delta carries the control and diagnosis planes' rollups next to
	// the fleet counters — all order-independent folds, so the aggregator's
	// sums stay exact.
	e.Sample = func() federate.Sample {
		s := base()
		if ctl != nil {
			cro := ctl.Rollup()
			s.Counters["recovery_reports"] = int64(cro.Reports)
			s.Counters["recovery_resets"] = int64(cro.Resets)
			s.Counters["recovery_restarts"] = int64(cro.Restarts)
			s.Counters["recovery_quarantines"] = int64(cro.Quarantines)
		}
		if eng != nil {
			dro := eng.Rollup()
			s.Counters["diagnosis_snapshots"] = int64(dro.Snapshots)
			s.Counters["diagnosis_fail_windows"] = int64(dro.FailWindows)
			s.Counters["diagnosis_pass_windows"] = int64(dro.PassWindows)
		}
		return s
	}
	done := make(chan struct{})
	go e.Run(done)
	slog.Info("edge uplink started", "component", "edge",
		"upstream", upstream, "edge", e.ID, "range", rng, "of", of)
	return func() { close(done) }, nil
}

// runAggregate is federation-aggregator mode: the -listen addresses accept
// edge uplinks (RoleEdge Hellos) instead of devices, the merged fleet-wide
// view is logged every -stats-seconds and served on -metrics, and -journal
// persists the ownership record so a restarted aggregator recovers its
// range map (credited totals re-feed themselves through resume baselines).
func runAggregate(addrs, journalDir string, ranges, failoverSecs, statsEvery int, metricsAddr string, obs obsConfig, verbose bool) error {
	// The aggregator traces too: the receive side of each uplink span lands
	// here, so an exemplar surfaced on the merged view resolves to the span
	// chain that began on an edge's ingest path.
	tracer := trace.New(trace.Options{Shards: 1, SampleN: obs.TraceSample})
	agg := &federate.Aggregator{
		Ranges:   ranges,
		Failover: time.Duration(failoverSecs) * time.Second,
		Logf:     logfAdapter("aggregator"),
		Tracer:   tracer,
	}
	if journalDir != "" {
		// Recover the ownership journal before listening, then append to it.
		if r, err := journal.OpenReader(journalDir); err == nil {
			n, err := agg.Recover(r)
			r.Close()
			if err != nil {
				return fmt.Errorf("recovering ownership journal %s: %w", journalDir, err)
			}
			if n > 0 {
				slog.Info("recovered ownership records", "component", "aggregator",
					"records", n, "dir", journalDir)
			}
		}
		jw, err := journal.Create(journalDir, journal.Options{})
		if err != nil {
			return err
		}
		defer jw.Close()
		agg.Journal = jw
		slog.Info("journaling ownership changes", "component", "aggregator", "dir", journalDir)
	}
	if metricsAddr != "" {
		mux := http.NewServeMux()
		mux.Handle("/metrics", federationMetricsHandler(agg, tracer))
		registerObservability(mux, tracer, obs.Pprof)
		msrv := &http.Server{Addr: metricsAddr, Handler: mux}
		go func() {
			if err := msrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				slog.Error("metrics listener failed", "component", "metrics", "err", err)
			}
		}()
		defer msrv.Close()
		slog.Info("serving merged fleet view", "component", "aggregator",
			"addr", metricsAddr, "pprof", obs.Pprof)
	}

	errc := make(chan error, 8)
	var listeners []net.Listener
	for _, addr := range strings.Split(addrs, ",") {
		addr = strings.TrimSpace(addr)
		if network, path, err := wire.SplitAddr(addr); err == nil && network == "unix" {
			_ = os.Remove(path)
		}
		ln, err := wire.Listen(addr)
		if err != nil {
			for _, l := range listeners {
				l.Close()
			}
			return err
		}
		listeners = append(listeners, ln)
		slog.Info("aggregating edge uplinks", "component", "aggregator",
			"addr", addr, "ranges", ranges, "failover_seconds", failoverSecs)
		go func() { errc <- agg.Serve(ln) }()
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	ticker := time.NewTicker(time.Duration(max(statsEvery, 1)) * time.Second)
	if statsEvery <= 0 {
		ticker.Stop()
	}
	defer ticker.Stop()
	logView := func(msg string) {
		v := agg.View()
		live := 0
		for _, e := range v.Edges {
			if e.Live {
				live++
			}
		}
		slog.Info(msg, "component", "federation",
			"devices", v.Devices, "edges", len(v.Edges), "live", live,
			"outputs", v.Counters["outputs"], "deviations", v.Counters["deviations"],
			"reports", v.Counters["reports"], "migrations", v.Migrations,
			"adoptions", v.Adoptions, "handoffs", v.Handoffs)
	}
	for {
		select {
		case <-ticker.C:
			logView("federation rollup")
		case sig := <-sigc:
			slog.Info("stopping aggregator", "component", "aggregator", "signal", sig.String())
			agg.Close()
			logView("final federation rollup")
			return nil
		case err := <-errc:
			if err != nil {
				agg.Close()
				return err
			}
		}
	}
}

// federationMetricsHandler renders the aggregator's merged view as
// Prometheus text: the fleet-wide counter folds, the per-edge accounts
// (labelled by edge), and the federation's own lifecycle counters.
func federationMetricsHandler(agg *federate.Aggregator, tr *trace.Tracer) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		v := agg.View()
		fmt.Fprintln(w, "# HELP trader_federation Fleet-wide counter folds merged from every edge's rollup deltas.")
		fmt.Fprintf(w, "trader_federation_devices %d\n", v.Devices)
		metrics.WritePromCounters(w, "trader_federation", "", v.Counters)
		for _, e := range v.Edges {
			live := 0
			if e.Live {
				live = 1
			}
			label := fmt.Sprintf("edge=%q", e.ID)
			fmt.Fprintf(w, "trader_federation_edge_live{%s} %d\n", label, live)
			fmt.Fprintf(w, "trader_federation_edge_devices{%s} %d\n", label, e.Devices)
			metrics.WritePromCounters(w, "trader_federation_edge", label, e.Counters)
		}
		fmt.Fprintf(w, "trader_federation_migrations_total %d\n", v.Migrations)
		fmt.Fprintf(w, "trader_federation_adoptions_total %d\n", v.Adoptions)
		fmt.Fprintf(w, "trader_federation_handoffs_total %d\n", v.Handoffs)
		if tr != nil {
			fmt.Fprintln(w, "# TYPE trader_trace_forced_overflow_total counter")
			fmt.Fprintf(w, "trader_trace_forced_overflow_total %d\n", tr.ForcedOverflow())
			fmt.Fprintln(w, "# TYPE trader_trace_spans_written_total counter")
			fmt.Fprintf(w, "trader_trace_spans_written_total %d\n", tr.Written())
		}
		writeProcessMetrics(w)
	})
}
