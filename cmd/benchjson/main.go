// Command benchjson converts `go test -bench` output into machine-readable
// JSON so the performance trajectory is tracked across PRs: `make bench`
// pipes the full benchmark run through it and writes BENCH_4.json with one
// entry per benchmark — iterations plus every reported metric (ns/op,
// B/op, allocs/op, and custom metrics like frames/s, reports/s, syncs/op).
//
// Usage:
//
//	benchjson [-in bench.out] [-out BENCH_4.json]
//
// With no flags it filters stdin to stdout, so it also composes:
//
//	go test -bench . -benchmem ./... | benchjson -out BENCH_4.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark path without the -P GOMAXPROCS suffix.
	Name string `json:"name"`
	// Pkg is the package the benchmark ran in (from the `pkg:` header).
	Pkg string `json:"pkg,omitempty"`
	// Procs is GOMAXPROCS during the run (the -P name suffix).
	Procs int `json:"procs,omitempty"`
	// Iterations is b.N.
	Iterations int64 `json:"iterations"`
	// Metrics holds every value/unit pair on the line, keyed by unit.
	Metrics map[string]float64 `json:"metrics"`
}

// Output is the file layout: run context plus the benchmark list.
type Output struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// parseLine parses one `BenchmarkX-8  N  v unit  v unit ...` result line,
// reporting ok=false for everything else (headers, PASS/ok lines, logs).
func parseLine(line, pkg string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") || len(f)%2 != 0 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: f[0], Pkg: pkg, Iterations: iters, Metrics: map[string]float64{}}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	return b, true
}

// parse scans a full `go test -bench` transcript.
func parse(r io.Reader) (Output, error) {
	var out Output
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "goos: "):
			out.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			out.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			out.CPU = strings.TrimPrefix(line, "cpu: ")
		default:
			if b, ok := parseLine(line, pkg); ok {
				out.Benchmarks = append(out.Benchmarks, b)
			}
		}
	}
	return out, sc.Err()
}

func main() {
	in := flag.String("in", "", "benchmark transcript to parse (default stdin)")
	outPath := flag.String("out", "", "JSON output file (default stdout)")
	flag.Parse()

	src := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatalf("benchjson: %v", err)
		}
		defer f.Close()
		src = f
	}
	out, err := parse(src)
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	if len(out.Benchmarks) == 0 {
		log.Fatalf("benchjson: no benchmark result lines found")
	}
	enc, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	enc = append(enc, '\n')
	if *outPath == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*outPath, enc, 0o644); err != nil {
		log.Fatalf("benchjson: %v", err)
	}
	fmt.Printf("benchjson: %d benchmarks -> %s\n", len(out.Benchmarks), *outPath)
}
