// Command tvsim runs the TV simulator as a standalone SUO process: it plays
// a user scenario, injects faults from a schedule, and (optionally) streams
// its events to a traderd monitor over a Unix socket — the full Fig. 2
// deployment across a real process boundary.
//
// Usage:
//
//	tvsim [-seed 1] [-duration 20] [-socket /tmp/trader.sock]
//	      [-faults video-crash,txt-sync,audio-skew]
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// knownFaults maps schedule names to fault definitions.
var knownFaults = map[string]faults.Fault{
	"video-crash": {ID: "video-crash", Kind: faults.TaskCrash, Target: "video", At: 5 * sim.Second},
	"txt-sync":    {ID: "txt-sync", Kind: faults.SyncLoss, Target: "teletext", At: 8 * sim.Second, Duration: 4 * sim.Second},
	"audio-skew":  {ID: "audio-skew", Kind: faults.ValueCorruption, Target: "audio", At: 12 * sim.Second, Param: -15},
	"overload":    {ID: "overload", Kind: faults.Overload, Target: "video", At: 6 * sim.Second, Duration: 5 * sim.Second, Param: 2.5},
	"bad-input":   {ID: "bad-input", Kind: faults.BadInput, Target: "tuner", At: 4 * sim.Second, Duration: 3 * sim.Second, Param: 0.4},
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Int("duration", 20, "virtual seconds to run")
	socket := flag.String("socket", "", "traderd unix socket to stream events to (empty: standalone)")
	faultList := flag.String("faults", "txt-sync", "comma-separated fault schedule; available: video-crash,txt-sync,audio-skew,overload,bad-input")
	flag.Parse()

	k := sim.NewKernel(*seed)
	tv := tvsim.New(k, tvsim.Config{})

	if *faultList != "" {
		for _, name := range strings.Split(*faultList, ",") {
			fault, ok := knownFaults[strings.TrimSpace(name)]
			if !ok {
				log.Fatalf("tvsim: unknown fault %q", name)
			}
			tv.Injector().Schedule(fault)
			log.Printf("tvsim: scheduled %s", fault)
		}
	}

	if *socket != "" {
		conn, err := net.Dial("unix", *socket)
		if err != nil {
			log.Fatalf("tvsim: dial %s: %v", *socket, err)
		}
		defer conn.Close()
		wc := wire.NewConn(conn)
		core.ForwardBus(tv.Bus(), wc, "tvsim", func(err error) {
			log.Printf("tvsim: forward: %v", err)
		})
		// Print error reports coming back from the monitor.
		go func() {
			for {
				msg, err := wc.Decode()
				if err != nil {
					return
				}
				if msg.Type == wire.TypeError && msg.Error != nil {
					log.Printf("tvsim: MONITOR ERROR %s", *msg.Error)
				}
			}
		}()
		log.Printf("tvsim: streaming events to %s", *socket)
	}

	// Event accounting for the session summary.
	var frames, errors int
	tv.Bus().Subscribe("", func(e event.Event) {
		switch e.Name {
		case "frame":
			frames++
		}
		if e.Kind == event.Err {
			errors++
		}
	})

	// A watching user: power on, teletext, periodic volume nudges.
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	horizon := sim.Time(*duration) * sim.Second
	for t := sim.Second; t < horizon; t += 2 * sim.Second {
		up := (t/sim.Second)%4 == 1
		k.ScheduleAt(t, func() {
			if up {
				tv.PressKey(tvsim.KeyVolUp)
			} else {
				tv.PressKey(tvsim.KeyVolDown)
			}
		})
	}
	k.Run(horizon)

	fmt.Printf("tvsim: ran %s of virtual time\n", horizon)
	fmt.Printf("tvsim: %d keys handled, %d frames shown, %d frame deadline misses\n",
		tv.KeysHandled, frames, tv.FrameMisses())
	for _, a := range tv.Injector().History() {
		to := "…"
		if a.To != 0 {
			to = a.To.String()
		}
		fmt.Printf("tvsim: fault %s active %s → %s\n", a.Fault.ID, a.From, to)
	}
}
