// Command tvsim runs the TV simulator as a standalone SUO process: it plays
// a user scenario, injects faults from a schedule, and (optionally) streams
// its events to a traderd monitor over a Unix socket — the full Fig. 2
// deployment across a real process boundary.
//
// With -connect it becomes a fleet of remote SUOs: it spins up N simulated
// TVs, each dialing a `traderd -listen` ingestion daemon on its own
// connection (Unix socket or TCP), performing the Hello handshake (-codec
// picks the wire codec) and streaming its events; error reports and control
// commands pushed down by the daemon are counted per device. Every
// -fault-every'th device runs the fault schedule, so a known fraction of
// the fleet misbehaves. Devices honor the recovery control plane of
// `traderd -recover`: CtrlReset is acknowledged, CtrlRestart re-handshakes
// and resumes streaming, CtrlQuarantine takes the device out of service.
// Each device also carries a spectral flight recorder (internal/diagnose):
// block coverage over the shared program layout, one window per heartbeat,
// served back on the daemon's TypeSnapshotReq pulls so `traderd -diagnose`
// can localize a faulty device's defective code block fleet-wide.
//
// Usage:
//
//	tvsim [-seed 1] [-duration 20] [-socket /tmp/trader.sock]
//	      [-faults video-crash,txt-sync,audio-skew]
//	tvsim -connect unix:/tmp/trader-fleet.sock -n 100 [-codec binary]
//	      [-duration 20] [-faults txt-sync] [-fault-every 10]
//	      [-pace 5] [-blocks 60000]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"trader/internal/core"
	"trader/internal/diagnose"
	"trader/internal/event"
	"trader/internal/faults"
	"trader/internal/sim"
	"trader/internal/tvsim"
	"trader/internal/wire"
)

// fatal is the slog replacement for log.Fatalf: one error record, exit 1.
func fatal(msg string, args ...any) {
	slog.Error(msg, args...)
	os.Exit(1)
}

// knownFaults maps schedule names to fault definitions.
var knownFaults = map[string]faults.Fault{
	"video-crash": {ID: "video-crash", Kind: faults.TaskCrash, Target: "video", At: 5 * sim.Second},
	"txt-sync":    {ID: "txt-sync", Kind: faults.SyncLoss, Target: "teletext", At: 8 * sim.Second, Duration: 4 * sim.Second},
	"audio-skew":  {ID: "audio-skew", Kind: faults.ValueCorruption, Target: "audio", At: 12 * sim.Second, Param: -15},
	"overload":    {ID: "overload", Kind: faults.Overload, Target: "video", At: 6 * sim.Second, Duration: 5 * sim.Second, Param: 2.5},
	"bad-input":   {ID: "bad-input", Kind: faults.BadInput, Target: "tuner", At: 4 * sim.Second, Duration: 3 * sim.Second, Param: 0.4},
}

func parseFaults(list string) ([]faults.Fault, error) {
	if list == "" {
		return nil, nil
	}
	var out []faults.Fault
	for _, name := range strings.Split(list, ",") {
		fault, ok := knownFaults[strings.TrimSpace(name)]
		if !ok {
			return nil, fmt.Errorf("unknown fault %q", name)
		}
		out = append(out, fault)
	}
	return out, nil
}

func main() {
	seed := flag.Int64("seed", 1, "random seed")
	duration := flag.Int("duration", 20, "virtual seconds to run")
	socket := flag.String("socket", "", "traderd unix socket to stream events to (empty: standalone)")
	connect := flag.String("connect", "", "traderd -listen address to join as a remote fleet (unix:/path or tcp:host:port)")
	n := flag.Int("n", 100, "number of simulated TVs in -connect mode")
	codec := flag.String("codec", wire.CodecBinary, "wire codec to request in -connect mode: json or binary")
	faultEvery := flag.Int("fault-every", 10, "in -connect mode, run the fault schedule on every k'th device (0: none)")
	faultList := flag.String("faults", "txt-sync", "comma-separated fault schedule; available: video-crash,txt-sync,audio-skew,overload,bad-input")
	blocks := flag.Int("blocks", diagnose.DefaultBlocks, "in -connect mode, spectral-recorder block count (must match traderd -diagnose-blocks)")
	deltas := flag.Bool("deltas", false, "in -connect mode, piggyback a sparse spectrum delta on every heartbeat (traderd -diagnose-continuous folds them as they arrive; also enables delta traffic from chaos baseline clients)")
	pace := flag.Float64("pace", 0, "in -connect mode, virtual seconds per wall second (0: run as fast as possible); paced fleets behave like real-time devices")
	durability := flag.String("durability", string(wire.DurFsync), "in -connect mode, durability class to request in the Hello handshake: fsync (ack = journaled) or dispatch (ack = monitored; long-tail devices)")
	chaos := flag.Bool("chaos", false, "in -connect mode, run the overload soak instead of the fleet scenario: floods, credit-hostile clients, connection churn, flapping, slow readers and byzantine frames around a steady baseline; -duration is wall seconds")
	idPrefix := flag.String("id-prefix", "tvsim", "in -connect mode, device-ID prefix (IDs are PREFIX-000000…); give each tvsim instance its own prefix when several feed one fleet — e.g. one per federation edge — so their device identities stay disjoint")
	logFormat := flag.String("log-format", "text", "structured log output: text or json")
	flag.Parse()

	switch *logFormat {
	case "json":
		slog.SetDefault(slog.New(slog.NewJSONHandler(os.Stderr, nil)))
	case "text", "":
		slog.SetDefault(slog.New(slog.NewTextHandler(os.Stderr, nil)))
	default:
		fmt.Fprintf(os.Stderr, "tvsim: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(1)
	}

	schedule, err := parseFaults(*faultList)
	if err != nil {
		fatal("bad -faults", "err", err)
	}
	dur, ok := wire.DurabilityByName(*durability)
	if !ok {
		fatal("unknown -durability", "durability", *durability)
	}

	if *chaos {
		if *connect == "" {
			fatal("-chaos requires -connect (it soaks a live traderd)")
		}
		if err := runChaos(*connect, *idPrefix, *n, *codec, *seed, *duration, dur, *deltas, *blocks); err != nil {
			fatal("chaos soak failed", "err", err)
		}
		return
	}

	if *connect != "" {
		if err := runFleet(*connect, *idPrefix, *n, *codec, *seed, *duration, *faultEvery, *blocks, *pace, dur, *deltas, schedule); err != nil {
			fatal("fleet session failed", "err", err)
		}
		return
	}
	runStandalone(*seed, *duration, *socket, schedule)
}

// scenario schedules the watching user on the TV: power on, teletext,
// periodic volume nudges, and returns the horizon to run to.
func scenario(k *sim.Kernel, tv *tvsim.TV, duration int) sim.Time {
	tv.PressKey(tvsim.KeyPower)
	tv.PressKey(tvsim.KeyText)
	horizon := sim.Time(duration) * sim.Second
	for t := sim.Second; t < horizon; t += 2 * sim.Second {
		up := (t/sim.Second)%4 == 1
		k.ScheduleAt(t, func() {
			if up {
				tv.PressKey(tvsim.KeyVolUp)
			} else {
				tv.PressKey(tvsim.KeyVolDown)
			}
		})
	}
	return horizon
}

// deviceStats aggregates what one remote TV saw during a -connect session.
type deviceStats struct {
	keys, frames          int
	reports, ctrls        uint64
	restarts, quarantines uint64
	snapshots, deltas     uint64
	stalls                uint64
}

// errDeviceDown reports a frame dropped because the device is between
// connections (restarting) or out of service (quarantined).
var errDeviceDown = errors.New("tvsim: device down")

// fleetTV is one remote SUO honoring the recovery control plane: a
// reconnectable connection whose reader answers control pushes — CtrlReset
// is acked, CtrlRestart re-handshakes and resumes streaming (frames emitted
// while down are lost: that is the downtime the controller accounts), and
// CtrlQuarantine stops the device for good.
type fleetTV struct {
	addr, id, codec string
	// durability is the class requested in every Hello (initial dial and
	// restart re-handshakes); the daemon's grant may be stronger.
	durability wire.Durability

	// rec is the device's spectral flight recorder: block coverage per
	// heartbeat window, served back on TypeSnapshotReq pulls.
	rec *diagnose.Recorder

	mu          sync.Mutex
	wc          *wire.Conn
	down        bool
	quarantined bool
	// stopped latches when the session ends (close): a restart re-dial
	// still in flight must not resurrect the connection afterwards.
	stopped bool

	// lastAt shadows the latest streamed virtual time so acks sent from
	// the reader goroutine carry an in-window timestamp.
	lastAt                atomic.Int64
	reports, ctrls        atomic.Uint64
	restarts, quarantines atomic.Uint64
	snapshots             atomic.Uint64
	// Flow control, client side: window is the Hello-granted frame-credit
	// window (0: off), credits the local balance. Every observation spends
	// one credit; heartbeats are free. The daemon's grants — mid-stream
	// TypeCredit frames and the Credits field on heartbeat echoes — are
	// deltas the reader adds back, waking a forward() blocked on an
	// exhausted window through creditc. creditStalls counts those blocks.
	window       atomic.Uint32
	credits      atomic.Int64
	creditc      chan struct{}
	creditStalls atomic.Uint64
	// echoedAt is the highest virtual time the daemon has echoed back —
	// the flush-barrier watermark. The daemon echoes heartbeats in order
	// once every earlier frame on the connection has been monitored, so a
	// device is drained exactly when echoedAt reaches its final
	// heartbeat's time.
	echoedAt atomic.Int64
}

func (d *fleetTV) at() sim.Time { return sim.Time(d.lastAt.Load()) }

// conn returns the live connection, or errDeviceDown between connections.
func (d *fleetTV) conn() (*wire.Conn, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.down || d.wc == nil {
		return nil, errDeviceDown
	}
	return d.wc, nil
}

func (d *fleetTV) send(m wire.Message) error {
	wc, err := d.conn()
	if err != nil {
		return err
	}
	return wc.Encode(m)
}

// grant adds a replenishment delta to the credit balance and wakes a
// forward() blocked on the empty window.
func (d *fleetTV) grant(n uint32) {
	if n == 0 {
		return
	}
	d.credits.Add(int64(n))
	select {
	case d.creditc <- struct{}{}:
	default:
	}
}

// forward streams one bus event, dropping it silently while the device is
// down — a restarting SUO produces no observable output. Under flow
// control it is the compliant half of the credit protocol: an exhausted
// window blocks the device (stalling its virtual time — that is the
// backpressure) after soliciting replenishment with a heartbeat, whose
// echo carries the grant.
func (d *fleetTV) forward(e event.Event) {
	wc, err := d.conn()
	if err != nil {
		return
	}
	if d.window.Load() > 0 {
		for d.credits.Load() <= 0 {
			d.creditStalls.Add(1)
			d.lastAt.Store(int64(e.At))
			_ = wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: d.id, At: e.At})
			select {
			case <-d.creditc:
			case <-time.After(50 * time.Millisecond):
				// The solicit may itself be shed near saturation; retry.
			}
			if wc, err = d.conn(); err != nil {
				return // restarted or quarantined while blocked
			}
		}
		d.credits.Add(-1)
	}
	d.lastAt.Store(int64(e.At))
	_ = wc.SendEvent(d.id, e)
}

// read consumes one connection's downstream frames until it ends.
func (d *fleetTV) read(wc *wire.Conn) {
	for {
		msg, err := wc.Decode()
		if err != nil {
			return
		}
		switch msg.Type {
		case wire.TypeError:
			d.reports.Add(1)
		case wire.TypeHeartbeat:
			// The daemon's heartbeat echo is a flush barrier: every
			// observation sent before it has been monitored and its error
			// frames already precede the echo on this stream. Its Credits
			// field is the echo's replenishment delta.
			if at := int64(msg.At); at > d.echoedAt.Load() {
				d.echoedAt.Store(at)
			}
			d.grant(msg.Credits)
		case wire.TypeCredit:
			// Mid-stream replenishment: the daemon topped the window back
			// up without waiting for the next heartbeat.
			d.grant(msg.Credits)
		case wire.TypeSnapshotReq:
			// The diagnosis plane pulls this device's coverage evidence.
			d.snapshots.Add(1)
			_ = d.send(wire.Message{Type: wire.TypeSnapshot, SUO: d.id, At: d.at(), Snapshot: d.rec.Snapshot()})
		case wire.TypeControl:
			d.ctrls.Add(1)
			switch msg.Control {
			case wire.CtrlReset:
				// Monitor-side state was re-armed; nothing to tear down on
				// a simulated TV — acknowledge so the controller knows. The
				// echoed trace context closes the control span chain on the
				// daemon (§6.2).
				ack := wire.Ack(d.id, wire.CtrlReset, d.at())
				ack.Trace = msg.Trace
				_ = d.send(ack)
			case wire.CtrlRestart:
				// Honored synchronously: a restarting SUO stops consuming
				// its old connection (a quarantine verdict racing the
				// restart is re-delivered by the daemon on the next
				// handshake). The next Decode sees the closed connection
				// and ends this reader.
				d.restart(msg.Trace)
			case wire.CtrlQuarantine:
				d.quarantines.Add(1)
				ack := wire.Ack(d.id, wire.CtrlQuarantine, d.at())
				ack.Trace = msg.Trace
				_ = d.send(ack)
				d.mu.Lock()
				d.quarantined, d.down = true, true
				d.mu.Unlock()
				wc.Close()
				return
			}
		}
	}
}

// restart honors CtrlRestart: drop the connection, re-handshake (the daemon
// re-admits the ID — or, in journal mode, hands back the adopted device),
// acknowledge, resume streaming. The push's trace context rides through the
// restart and is echoed on the ack, so the daemon's span chain measures the
// full restart round-trip.
func (d *fleetTV) restart(tc *wire.TraceContext) {
	d.mu.Lock()
	if d.quarantined || d.stopped {
		d.mu.Unlock()
		return
	}
	d.down = true
	old := d.wc
	d.wc = nil
	d.mu.Unlock()
	if old != nil {
		old.Close()
	}
	var wc *wire.Conn
	var granted uint32
	var err error
	for try := 0; try < 40; try++ {
		// The daemon may still be tearing the old registration down; the
		// ID frees up within a removal round-trip.
		if wc, _, granted, err = wire.DialFlow(d.addr, d.id, d.codec, d.durability); err == nil {
			break
		}
		time.Sleep(25 * time.Millisecond)
	}
	if err != nil {
		slog.Warn("restart re-handshake failed", "component", "device", "device", d.id, "err", err)
		return
	}
	d.mu.Lock()
	if d.quarantined || d.stopped { // overtaken while re-dialing: stay down
		d.mu.Unlock()
		wc.Close()
		return
	}
	d.wc = wc
	d.down = false
	d.mu.Unlock()
	// The credit window is per connection: the re-handshake granted a
	// fresh one, and any balance from the dead connection is void.
	d.window.Store(granted)
	d.credits.Store(int64(granted))
	// Only now is the restart honored: re-handshaken and streaming again.
	d.restarts.Add(1)
	ack := wire.Ack(d.id, wire.CtrlRestart, d.at())
	ack.Trace = tc
	_ = wc.Encode(ack)
	go d.read(wc)
}

func (d *fleetTV) close() {
	d.mu.Lock()
	wc := d.wc
	d.wc, d.down, d.stopped = nil, true, true
	d.mu.Unlock()
	if wc != nil {
		wc.Close()
	}
}

// runOne connects one simulated TV to the ingestion daemon and plays the
// scenario to the horizon, streaming every bus event over the wire and
// honoring any recovery commands the daemon pushes back. The device's
// spectral recorder shadows the session: every bus event maps onto the
// shared program layout, a heartbeat each virtual second closes the
// coverage window, and a faulty device's schedule marks the targeted
// feature's code as defective — so a traderd -diagnose pull can localize
// the fault block across the fleet.
func runOne(addr, id, codec string, seed int64, duration, blocks int, pace float64, dur wire.Durability, deltas bool, schedule []faults.Fault) (deviceStats, error) {
	var st deviceStats
	d := &fleetTV{addr: addr, id: id, codec: codec, durability: dur,
		creditc: make(chan struct{}, 1),
		rec:     diagnose.NewRecorder(diagnose.RecorderOptions{Blocks: blocks, Seed: seed})}
	for _, f := range schedule {
		if feat, ok := diagnose.FeatureOfComponent(f.Target); ok {
			d.rec.InjectFault(feat)
		}
	}
	wc, _, granted, err := wire.DialFlow(addr, id, codec, dur)
	if err != nil {
		return st, err
	}
	d.wc = wc
	d.window.Store(granted)
	d.credits.Store(int64(granted))
	go d.read(wc)

	k := sim.NewKernel(seed)
	tv := tvsim.New(k, tvsim.Config{})
	for _, f := range schedule {
		tv.Injector().Schedule(f)
	}
	var frames int
	tv.Bus().Subscribe("frame", func(event.Event) { frames++ })
	sub := tv.Bus().Subscribe("", func(e event.Event) {
		if e.Kind == event.Err {
			return
		}
		d.rec.Observe(e)
		d.forward(e)
	})
	defer sub.Unsubscribe()

	// A heartbeat every virtual second: the flush-barrier pacing for the
	// daemon and the window boundary for the spectral recorder. With -deltas
	// the closing window rides along as a sparse spectrum delta just before
	// the heartbeat — continuous diagnosis evidence, no pull required. Deltas
	// spend no credit: like heartbeats they are bounded per virtual second,
	// not per observation, and the daemon sheds them under pressure instead.
	hb := k.Every(sim.Second, func() {
		at := k.Now()
		d.lastAt.Store(int64(at))
		if deltas {
			delta := d.rec.RotateDelta(at)
			if d.send(wire.Message{Type: wire.TypeSpectrumDelta, SUO: id, At: at, Delta: delta}) == nil {
				st.deltas++
			}
		} else {
			d.rec.Rotate(at)
		}
		_ = d.send(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: at})
	})
	defer hb.Stop()

	// With pacing, virtual time tracks wall time (pace virtual seconds per
	// wall second) instead of racing ahead as fast as the CPU allows — the
	// cadence of a real device in the field. A paced fleet keeps the
	// daemon's per-connection backlog near zero, so recovery pushes and
	// diagnosis pulls interleave with the stream the way they would in
	// production rather than racing a seconds-deep queue.
	horizon := scenario(k, tv, duration)
	if pace > 0 {
		// Pace against absolute deadlines on the monotonic clock, not a
		// fixed sleep per burst: sleeping wallStep AFTER each k.Run adds the
		// burst's own processing time to every period, so the cadence
		// drifted late by the accumulated work — minutes over a long paced
		// session. Sleeping until start+i*wallStep absorbs the work time
		// instead of stacking it.
		wallStep := time.Duration(float64(time.Second) / pace)
		start := time.Now()
		for i, t := 1, k.Now()+sim.Second; t <= horizon; i, t = i+1, t+sim.Second {
			k.Run(t)
			time.Sleep(time.Until(start.Add(time.Duration(i) * wallStep)))
		}
	}
	k.Run(horizon)

	// Drain: a final heartbeat at the horizon, then wait for the daemon to
	// echo THAT time back — a stale echo of an earlier periodic heartbeat
	// must not end the session while the daemon is still chewing through
	// the stream's tail (closing early would discard it, snapshot replies
	// included). A device that ended the session down (restarting or
	// quarantined) has nothing to drain.
	d.lastAt.Store(int64(horizon))
	if err := d.send(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: horizon}); err == nil {
		for waited := time.Duration(0); d.echoedAt.Load() < int64(horizon) && waited < 30*time.Second; waited += 10 * time.Millisecond {
			time.Sleep(10 * time.Millisecond)
		}
	}
	d.close()
	st.keys, st.frames = int(tv.KeysHandled), frames
	st.reports, st.ctrls = d.reports.Load(), d.ctrls.Load()
	st.restarts, st.quarantines = d.restarts.Load(), d.quarantines.Load()
	st.snapshots, st.stalls = d.snapshots.Load(), d.creditStalls.Load()
	return st, nil
}

// runFleet drives n concurrent remote TVs against the ingestion daemon.
func runFleet(addr, prefix string, n int, codec string, seed int64, duration, faultEvery, blocks int, pace float64, dur wire.Durability, deltas bool, schedule []faults.Fault) error {
	slog.Info("connecting fleet", "component", "fleet",
		"tvs", n, "addr", addr, "codec", codec, "durability", string(dur), "fault_every", faultEvery)
	start := time.Now()
	var wg sync.WaitGroup
	stats := make([]deviceStats, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var sched []faults.Fault
			if faultEvery > 0 && i%faultEvery == 0 {
				sched = schedule
			}
			id := fmt.Sprintf("%s-%06d", prefix, i)
			stats[i], errs[i] = runOne(addr, id, codec, seed+int64(i), duration, blocks, pace, dur, deltas, sched)
		}(i)
	}
	wg.Wait()

	var ok, keys, frames int
	var reports, ctrls, restarts, quarantines, snapshots, sentDeltas, stalls uint64
	var firstErr error
	for i := range stats {
		if errs[i] != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("%s-%06d: %w", prefix, i, errs[i])
			}
			continue
		}
		ok++
		keys += stats[i].keys
		frames += stats[i].frames
		reports += stats[i].reports
		ctrls += stats[i].ctrls
		restarts += stats[i].restarts
		quarantines += stats[i].quarantines
		snapshots += stats[i].snapshots
		sentDeltas += stats[i].deltas
		stalls += stats[i].stalls
	}
	slog.Info("fleet session done", "component", "fleet",
		"took", time.Since(start).String(), "completed", ok, "tvs", n, "keys", keys,
		"frames", frames, "reports", reports, "controls", ctrls, "restarts", restarts,
		"quarantines", quarantines, "snapshots", snapshots, "deltas", sentDeltas)
	if stalls > 0 {
		slog.Info("flow control honored", "component", "fleet", "credit_stalls", stalls)
	}
	if ok == 0 && firstErr != nil {
		return firstErr
	}
	if firstErr != nil {
		slog.Warn("first device failure", "component", "fleet", "err", firstErr)
	}
	return nil
}

// runStandalone is the original single-TV mode: run locally, optionally
// streaming to the legacy per-connection traderd socket.
func runStandalone(seed int64, duration int, socket string, schedule []faults.Fault) {
	k := sim.NewKernel(seed)
	tv := tvsim.New(k, tvsim.Config{})

	for _, fault := range schedule {
		tv.Injector().Schedule(fault)
		slog.Info("fault scheduled", "component", "standalone", "fault", fmt.Sprint(fault))
	}

	if socket != "" {
		conn, err := net.Dial("unix", socket)
		if err != nil {
			fatal("dial failed", "socket", socket, "err", err)
		}
		defer conn.Close()
		wc := wire.NewConn(conn)
		core.ForwardBus(tv.Bus(), wc, "tvsim", func(err error) {
			slog.Warn("forward failed", "component", "standalone", "err", err)
		})
		// Print error reports coming back from the monitor.
		go func() {
			for {
				msg, err := wc.Decode()
				if err != nil {
					return
				}
				if msg.Type == wire.TypeError && msg.Error != nil {
					slog.Info("monitor error report", "component", "standalone", "report", msg.Error.String())
				}
			}
		}()
		slog.Info("streaming events", "component", "standalone", "socket", socket)
	}

	// Event accounting for the session summary.
	var frames, errors int
	tv.Bus().Subscribe("", func(e event.Event) {
		switch e.Name {
		case "frame":
			frames++
		}
		if e.Kind == event.Err {
			errors++
		}
	})

	horizon := scenario(k, tv, duration)
	k.Run(horizon)

	fmt.Printf("tvsim: ran %s of virtual time\n", horizon)
	fmt.Printf("tvsim: %d keys handled, %d frames shown, %d frame deadline misses\n",
		tv.KeysHandled, frames, tv.FrameMisses())
	for _, a := range tv.Injector().History() {
		to := "…"
		if a.To != 0 {
			to = a.To.String()
		}
		fmt.Printf("tvsim: fault %s active %s → %s\n", a.Fault.ID, a.From, to)
	}
}
