package main

import (
	"encoding/binary"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"trader/internal/event"
	"trader/internal/sim"
	"trader/internal/wire"
)

// Chaos mode: a soak harness that throws every hostile connection shape the
// overload plane defends against at a live traderd, all at once, for a wall
// clock duration — while a slice of well-behaved devices keeps streaming so
// the daemon's latency SLO is measured under fire, not in a vacuum. Each
// device plays one role, round-robin:
//
//	steady    — credit-compliant streaming at a modest pace (the baseline
//	            whose p99 the SLO is stated over)
//	flood     — credit-compliant but unpaced: sends as fast as grants allow,
//	            stalling into heartbeats when the window is dry
//	hostile   — ignores its credit window entirely; the daemon must
//	            disconnect it with a violation error, over and over
//	churn     — connects, streams a little, disconnects cleanly, reconnects
//	flap      — half-open connections: handshakes, goes silent, vanishes
//	slowread  — streams but never reads its downstream, so the daemon's
//	            pushes back up into its write deadline
//	byzantine — well-formed handshake, then garbage: corrupt payloads,
//	            oversized frame headers, runaway timestamps
//
// The harness asserts nothing itself — it is the load half of the overload
// e2e story. The judgment lives on the daemon: its /metrics endpoint must
// show tier-ordered sheds (control always zero) and a within-SLO p99 for
// the admitted stream; CI's chaos smoke job curls exactly that.

// chaosRoles in round-robin order; indexes 7+ of each group of 8 are steady,
// so a quarter of the fleet is baseline traffic.
var chaosRoles = []string{"flood", "hostile", "churn", "flap", "slowread", "byzantine", "steady", "steady"}

// chaosTally is one role's aggregated outcome across the fleet and the run.
type chaosTally struct {
	conns     atomic.Uint64 // successful handshakes
	dialErrs  atomic.Uint64 // refused/failed dials (daemon may be saturated)
	frames    atomic.Uint64 // observation frames pushed onto the wire
	drops     atomic.Uint64 // connections the daemon terminated on us
	errFrames atomic.Uint64 // error frames received (violations, vetting)
	stalls    atomic.Uint64 // credit-window stalls honored (compliant roles)
}

// chaosDial hands back the raw conn next to the wire conn: chaos roles need
// read deadlines (a shed heartbeat has no echo; a blocked Decode must not
// outlive the soak) and raw byte access (byzantine frames).
func chaosDial(addr, id, codec string, dur wire.Durability) (net.Conn, *wire.Conn, uint32, error) {
	network, address, err := wire.SplitAddr(addr)
	if err != nil {
		return nil, nil, 0, err
	}
	raw, err := net.Dial(network, address)
	if err != nil {
		return nil, nil, 0, err
	}
	wc := wire.NewConn(raw)
	_, _, credits, err := wc.HandshakeFlow(id, codec, dur)
	if err != nil {
		raw.Close()
		return nil, nil, 0, err
	}
	return raw, wc, credits, nil
}

// chaosObsMessage is the observation chaos devices stream: in-spec (x = 0),
// so admitted frames cost the monitors comparisons, not deviation handling.
func chaosObsMessage(id string, at sim.Time) wire.Message {
	ev := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", 0)
	return wire.Message{Type: wire.TypeOutput, SUO: id, Event: &ev, At: at}
}

// runChaos drives the soak: n devices, one goroutine each, playing their
// role in a loop until the wall deadline. -duration is wall seconds here —
// chaos is a wall-clock soak, not a virtual-time scenario.
func runChaos(addr, prefix string, n int, codec string, seed int64, wallSecs int, dur wire.Durability, deltas bool, blocks int) error {
	slog.Info("chaos soak starting", "component", "chaos",
		"devices", n, "addr", addr, "wall_seconds", wallSecs,
		"roles", "flood,hostile,churn,flap,slowread,byzantine,steady")
	if deltas {
		slog.Info("compliant roles piggyback spectrum deltas", "component", "chaos", "blocks", blocks)
	}
	deadline := time.Now().Add(time.Duration(wallSecs) * time.Second)
	tallies := make(map[string]*chaosTally, len(chaosRoles))
	for _, r := range chaosRoles {
		if tallies[r] == nil {
			tallies[r] = &chaosTally{}
		}
	}
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		role := chaosRoles[i%len(chaosRoles)]
		id := fmt.Sprintf("%s-%s-%04d", prefix, role, i)
		t := tallies[role]
		rng := sim.NewKernel(seed + int64(i)).Rand()
		jitter := time.Duration(rng.Intn(20)) * time.Millisecond
		wg.Add(1)
		go func() {
			defer wg.Done()
			time.Sleep(jitter) // stagger the initial stampede
			for time.Now().Before(deadline) {
				switch role {
				case "steady":
					chaosCompliant(addr, id, codec, dur, t, deadline, time.Millisecond, deltas, blocks)
				case "flood":
					chaosCompliant(addr, id, codec, dur, t, deadline, 0, deltas, blocks)
				case "hostile":
					chaosHostile(addr, id, codec, dur, t, deadline)
				case "churn":
					chaosChurn(addr, id, codec, dur, t)
				case "flap":
					chaosFlap(addr, id, codec, dur, t, rng.Intn(150))
				case "slowread":
					chaosSlowRead(addr, id, codec, dur, t, deadline)
				case "byzantine":
					chaosByzantine(addr, id, codec, dur, t, rng.Intn(3))
				}
				time.Sleep(10 * time.Millisecond) // let the daemon reap the ID
			}
		}()
	}
	wg.Wait()

	slog.Info("chaos soak done", "component", "chaos")
	for _, role := range []string{"steady", "flood", "hostile", "churn", "flap", "slowread", "byzantine"} {
		t := tallies[role]
		slog.Info("chaos role outcome", "component", "chaos", "role", role,
			"conns", t.conns.Load(), "dial_failures", t.dialErrs.Load(),
			"frames", t.frames.Load(), "dropped", t.drops.Load(),
			"error_frames", t.errFrames.Load(), "credit_stalls", t.stalls.Load())
	}
	// The soak's only local invariant: the daemon outlived all of it. The
	// steady baseline must have kept streaming; everything else is judged
	// on the daemon side (/metrics: control sheds zero, p99 in SLO).
	if tallies["steady"].frames.Load() == 0 {
		return fmt.Errorf("steady baseline streamed nothing — the daemon did not survive the soak")
	}
	return nil
}

// chaosCompliant is one compliant session: stream observations honoring the
// credit window (solicit-and-drain on exhaustion), heartbeat periodically,
// disconnect cleanly at the deadline. pace 0 floods as fast as grants
// allow; otherwise it sleeps pace per frame. With deltas on, every drain
// heartbeat carries a small spectrum delta first — the continuous-diagnosis
// traffic a real device piggybacks, kept flowing while the hostile roles
// rage, so the soak proves the diagnosis inbox sheds nothing
// (trader_diagnose_dropped_total stays 0).
func chaosCompliant(addr, id, codec string, dur wire.Durability, t *chaosTally, deadline time.Time, pace time.Duration, deltas bool, blocks int) {
	raw, wc, credits, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	defer raw.Close()
	window := credits != 0
	at := sim.Time(0)
	// drain sends a heartbeat and reads until its echo, crediting every
	// grant on the way. A shed heartbeat (tier 2) yields no echo: the read
	// deadline turns that silence into a retry, exactly like a real client
	// waiting out the daemon's backpressure.
	drain := func() bool {
		at += 10 * sim.Millisecond
		if deltas {
			// Seq tracks virtual time, so it is strictly increasing within
			// the session; a later session's restart from low Seqs is simply
			// deduped by the engine's fold mark, never an error.
			d := &wire.SpectrumDelta{Seq: uint64(at), Blocks: blocks,
				Index: []uint32{0}, Words: []uint64{1}}
			if wc.Encode(wire.Message{Type: wire.TypeSpectrumDelta, SUO: id, At: at, Delta: d}) != nil {
				t.drops.Add(1)
				return false
			}
		}
		if wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: at}) != nil {
			t.drops.Add(1)
			return false
		}
		for {
			_ = raw.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
			msg, err := wc.Decode()
			if err != nil {
				if ne, ok := err.(net.Error); ok && ne.Timeout() {
					return time.Now().Before(deadline) // shed echo: retry outside
				}
				t.drops.Add(1)
				return false
			}
			switch msg.Type {
			case wire.TypeCredit:
				credits += msg.Credits
			case wire.TypeHeartbeat:
				credits += msg.Credits
				if msg.At == at {
					return true
				}
			case wire.TypeError:
				t.errFrames.Add(1)
			}
		}
	}
	for time.Now().Before(deadline) {
		if window && credits == 0 {
			t.stalls.Add(1)
			if !drain() {
				return
			}
			continue
		}
		at += 5 * sim.Millisecond
		if wc.Encode(chaosObsMessage(id, at)) != nil {
			t.drops.Add(1)
			return
		}
		t.frames.Add(1)
		if window {
			credits--
		}
		if pace > 0 {
			time.Sleep(pace)
		}
		if at%(500*sim.Millisecond) == 0 && !drain() {
			return
		}
	}
}

// chaosHostile ignores the credit window: it blasts observations without
// ever heartbeating. Under flow control the daemon must kill it with a
// credit-violation error; without, the burst bound ends the session.
func chaosHostile(addr, id, codec string, dur wire.Durability, t *chaosTally, deadline time.Time) {
	raw, wc, _, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	defer raw.Close()
	at := sim.Time(0)
	for i := 0; i < 10000 && time.Now().Before(deadline); i++ {
		at += sim.Millisecond
		if wc.Encode(chaosObsMessage(id, at)) != nil {
			t.drops.Add(1)
			break
		}
		t.frames.Add(1)
	}
	// Read out the verdict (the violation error frame, then the close).
	for {
		_ = raw.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
		msg, err := wc.Decode()
		if err != nil {
			return
		}
		if msg.Type == wire.TypeError {
			t.errFrames.Add(1)
		}
	}
}

// chaosChurn is registration pressure: stream briefly, leave cleanly,
// reconnect (the caller loops).
func chaosChurn(addr, id, codec string, dur wire.Durability, t *chaosTally) {
	raw, wc, credits, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	defer raw.Close()
	burst := 5
	if credits != 0 && int(credits) < burst {
		burst = int(credits) // churners are compliant too
	}
	at := sim.Time(0)
	for i := 0; i < burst; i++ {
		at += sim.Millisecond
		if wc.Encode(chaosObsMessage(id, at)) != nil {
			t.drops.Add(1)
			return
		}
		t.frames.Add(1)
	}
	_ = wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: at})
}

// chaosFlap is the half-open client: handshake, silence, vanish. The
// daemon's reaper (heartbeat-less connections, write deadlines) must keep
// the registration table from leaking.
func chaosFlap(addr, id, codec string, dur wire.Durability, t *chaosTally, idleMs int) {
	raw, _, _, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	time.Sleep(time.Duration(50+idleMs) * time.Millisecond)
	raw.Close() // abrupt: no drain heartbeat, no goodbye
}

// chaosSlowRead streams but never reads its downstream. Heartbeat echoes
// back up into the socket until the daemon's write deadline fires and it
// drops us — the stalled-reader defense, exercised.
func chaosSlowRead(addr, id, codec string, dur wire.Durability, t *chaosTally, deadline time.Time) {
	raw, wc, credits, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	defer raw.Close()
	at := sim.Time(0)
	budget := int64(credits)
	for time.Now().Before(deadline) {
		at += sim.Millisecond
		if credits != 0 && budget == 0 {
			// Stay credit-compliant (this role tests read-side stalling,
			// not the violation path): heartbeat and assume the echo's
			// full-window grant — which is sitting unread in the socket.
			if wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: at}) != nil {
				t.drops.Add(1)
				return
			}
			budget = int64(credits)
			continue
		}
		if wc.Encode(chaosObsMessage(id, at)) != nil {
			t.drops.Add(1)
			return
		}
		t.frames.Add(1)
		if credits != 0 {
			budget--
		}
	}
}

// chaosByzantine handshakes cleanly and then speaks garbage — each call one
// of three dialects. Every variant must end with the daemon closing just
// this connection.
func chaosByzantine(addr, id, codec string, dur wire.Durability, t *chaosTally, variant int) {
	raw, wc, _, err := chaosDial(addr, id, codec, dur)
	if err != nil {
		t.dialErrs.Add(1)
		return
	}
	t.conns.Add(1)
	defer raw.Close()
	switch variant {
	case 0:
		// A framed payload that decodes to nothing in either codec.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], 5)
		_, _ = raw.Write(hdr[:])
		_, _ = raw.Write([]byte{0xff, 0xfe, '{', '{', '{'})
	case 1:
		// A header announcing a frame larger than MaxFrame.
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], wire.MaxFrame+1)
		_, _ = raw.Write(hdr[:])
	default:
		// A runaway timestamp: one heartbeat asking for ~293 years of
		// virtual time, which the advance window must refuse.
		_ = wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: id, At: sim.Time(1) << 62})
	}
	// The daemon answers with an error frame and/or a close; read it out.
	for {
		_ = raw.SetReadDeadline(time.Now().Add(time.Second))
		msg, err := wc.Decode()
		if err != nil {
			return
		}
		if msg.Type == wire.TypeError {
			t.errFrames.Add(1)
		}
	}
}
