// Command experiments runs every experiment of DESIGN.md §4 (E1–E13, plus
// the fleet-scaling experiment E14) and prints the paper-vs-measured tables
// that EXPERIMENTS.md records.
//
// Usage:
//
//	experiments [-seed N] [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"

	"trader/internal/exper"
)

func main() {
	seed := flag.Int64("seed", 42, "base random seed")
	only := flag.String("only", "", "run only the experiment with this ID (e.g. E4)")
	flag.Parse()

	type experiment struct {
		id  string
		run func() (*exper.Table, error)
	}
	s := *seed
	all := []experiment{
		{"E1", func() (*exper.Table, error) { return exper.E1ClosedLoop(s) }},
		{"E2", exper.E2FrameworkOverhead},
		{"E3", func() (*exper.Table, error) { return exper.E3ComparatorTradeoff(s) }},
		{"E4", func() (*exper.Table, error) { return exper.E4Diagnosis(s) }},
		{"E5", func() (*exper.Table, error) { return exper.E5ModeConsistency(s) }},
		{"E6", func() (*exper.Table, error) { return exper.E6Recovery(s) }},
		{"E7", func() (*exper.Table, error) { return exper.E7Migration(s) }},
		{"E8", func() (*exper.Table, error) { return exper.E8Perception(s) }},
		{"E9", func() (*exper.Table, error) { return exper.E9Stress(s) }},
		{"E10", func() (*exper.Table, error) { return exper.E10WarningPriority(s) }},
		{"E11", func() (*exper.Table, error) { return exper.E11ModelQuality(s) }},
		{"E12", func() (*exper.Table, error) { return exper.E12MediaPlayer(s) }},
		{"E13", func() (*exper.Table, error) { return exper.E13FMEA(s) }},
		{"E14", func() (*exper.Table, error) { return exper.E14Fleet(s) }},
	}
	ran := 0
	for _, e := range all {
		if *only != "" && e.id != *only {
			continue
		}
		tab, err := e.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.id, err)
			os.Exit(1)
		}
		tab.Fprint(os.Stdout)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiment matches -only=%s\n", *only)
		os.Exit(2)
	}
}
