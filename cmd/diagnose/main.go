// Command diagnose runs spectrum-based fault localization (Sect. 4.4) on a
// synthetic TV control program: it injects a fault in a chosen feature, runs
// a key-press scenario, and prints the suspiciousness ranking.
//
// Usage:
//
//	diagnose [-blocks 60000] [-seed 42] [-feature teletext] [-coeff ochiai] [-top 10] [-repeat 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"trader/internal/spectrum"
)

func main() {
	blocks := flag.Int("blocks", 60000, "instrumented block count")
	seed := flag.Int64("seed", 42, "random seed")
	feature := flag.String("feature", "teletext", "feature containing the injected fault")
	coeffName := flag.String("coeff", "ochiai", "similarity coefficient")
	top := flag.Int("top", 10, "ranking entries to print")
	repeat := flag.Int("repeat", 1, "repetitions of the 27-press scenario")
	flag.Parse()

	coeff, ok := spectrum.CoefficientByName(*coeffName)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown coefficient %q; available:", *coeffName)
		for _, c := range spectrum.AllCoefficients() {
			fmt.Fprintf(os.Stderr, " %s", c.Name)
		}
		fmt.Fprintln(os.Stderr)
		os.Exit(2)
	}

	p := spectrum.GenerateTVProgram(*seed, *blocks)
	fault := p.FaultInFeature(*feature)
	var scenario []string
	for i := 0; i < *repeat; i++ {
		scenario = append(scenario, spectrum.PaperScenario()...)
	}
	m := p.RunScenario(scenario, fault)

	fmt.Printf("program: %d blocks, fault injected in %q at block %d\n", m.Blocks(), *feature, fault)
	fmt.Printf("scenario: %d key presses, %d failing, %d blocks executed\n",
		m.Transactions(), m.Failures(), m.CoveredBlocks())
	rank, ties := m.RankOf(fault, coeff)
	fmt.Printf("fault rank under %s: %d (tied with %d), wasted effort %.4f%%\n",
		coeff.Name, rank, ties-1, 100*m.WastedEffort(fault, coeff))
	fmt.Printf("top %d suspicious blocks:\n", *top)
	for i, r := range m.Rank(coeff)[:*top] {
		marker := ""
		if r.Block == fault {
			marker = "  <-- injected fault"
		}
		fmt.Printf("  %2d. block %6d  score %.4f%s\n", i+1, r.Block, r.Score, marker)
	}
}
