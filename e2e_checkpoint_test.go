package trader_test

// End-to-end test of the sharded journal, tiered durability and monitor
// checkpoints (ISSUE 6): a fleet streams through an ingestion server backed
// by a per-shard journal, half the connections negotiating the relaxed
// ack-on-dispatch tier in their Hello; a global checkpoint snapshots every
// monitor mid-session and truncates the covered segments (including a
// flat-era segment in the directory root); the daemon is killed and one
// stream's tail is torn — and a pool rebuilt by Pool.Replay, reading ONLY
// the post-checkpoint segments, must report exactly the rollup of an
// uninterrupted control pool that monitored the full session.

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/wire"
)

// dialE2ETiered is dialE2E with a durability request in the Hello, returning
// the class the server granted alongside the client.
func dialE2ETiered(t *testing.T, addr, id, codec string, dur wire.Durability) (*e2eClient, wire.Durability) {
	t.Helper()
	conn, granted, err := wire.DialTiered(addr, id, codec, dur)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	c := &e2eClient{id: id, conn: conn, echo: make(chan sim.Time, 16)}
	go func() {
		for {
			msg, err := conn.Decode()
			if err != nil {
				return
			}
			switch msg.Type {
			case wire.TypeError:
				c.mu.Lock()
				c.reports++
				c.mu.Unlock()
			case wire.TypeHeartbeat:
				c.echo <- msg.At
			}
		}
	}()
	return c, granted
}

func TestE2ECheckpointReplay(t *testing.T) {
	const (
		devices     = 16
		shards      = 4
		framesA     = 20 // pre-checkpoint frames per device (truncated away)
		framesB     = 10 // post-checkpoint frames per device (the replay delta)
		faultyEvery = 4
		critical    = 8 // devices below this index are granted fsync regardless
	)
	cpID := func(i int) string { return fmt.Sprintf("cp-%03d", i) }
	levelOf := func(i int) float64 {
		if i%faultyEvery == 0 {
			return 2.0
		}
		return 0.0
	}
	hbA := sim.Time(10+framesA*10) * sim.Millisecond // multiple of the 10ms compare grid
	fromB := int64(10+framesA*10) + 10
	hbB := sim.Time(fromB+framesB*10) * sim.Millisecond

	// A flat-era segment in the directory root: history from a run that
	// predates sharding. The checkpoint must reclaim it too.
	dir := t.TempDir()
	flat, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := flat.Append(wire.Message{Type: wire.TypeHello, SUO: "traderd", Target: "light"}); err != nil {
		t.Fatal(err)
	}
	if err := flat.Close(); err != nil {
		t.Fatal(err)
	}

	jw, err := journal.CreateSharded(dir, shards, journal.Options{SegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: shards})
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw,
		// Durability policy: the critical slice of the fleet is pinned to
		// fsync whatever it asked for; the long tail gets what it requested.
		GrantDurability: func(hello wire.Message) wire.Durability {
			if hello.SUO < cpID(critical) {
				return wire.DurFsync
			}
			return hello.Durability
		},
	}
	addr := "unix:" + filepath.Join(t.TempDir(), "cp.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	// Phase A: the whole fleet connects — odd devices request the relaxed
	// ack-on-dispatch tier — and streams framesA observations each.
	clients := make([]*e2eClient, devices)
	granted := make([]wire.Durability, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := wire.DurFsync
			if i%2 == 1 {
				req = wire.DurDispatch
			}
			clients[i], granted[i] = dialE2ETiered(t, addr, cpID(i), wire.CodecBinary, req)
			clients[i].stream(t, framesA, levelOf(i), 10)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	for i, g := range granted {
		want := wire.DurFsync
		if i >= critical && i%2 == 1 {
			want = wire.DurDispatch
		}
		if g != want {
			t.Fatalf("%s: granted durability %q, want %q", cpID(i), g, want)
		}
	}

	// Global checkpoint: freeze all four streams, snapshot every monitor,
	// truncate everything the snapshot covers. Every client is drained (its
	// heartbeat echo arrived), so the capture sees the settled phase-A state.
	cper := &fleet.Checkpointer{Pool: pool, Journal: jw, Profile: "light"}
	if err := cper.Checkpoint(); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if names, _ := filepath.Glob(filepath.Join(dir, "wal-*.seg")); len(names) != 0 {
		t.Fatalf("flat-era root segments survived the checkpoint: %v", names)
	}
	for s := 0; s < shards; s++ {
		names, _ := filepath.Glob(filepath.Join(dir, fmt.Sprintf("shard-%03d", s), "wal-*.seg"))
		if len(names) != 1 {
			t.Fatalf("shard %d has %d segments after checkpoint, want exactly the checkpoint segment", s, len(names))
		}
	}

	// Phase B: the delta after the checkpoint — the only traffic replay may
	// re-dispatch.
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *e2eClient) {
			defer wg.Done()
			c.stream(t, framesB, levelOf(i), fromB)
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Crash. The journal writer is flushed but the pool dies with it; the
	// un-synced suffix a relaxed-tier connection could lose in a hard kill
	// is exactly the loss window ack-on-dispatch contracts away, and the
	// torn-tail-under-SIGKILL path is pinned by TestE2EJournalCrashRecovery
	// and the journal's own crash tests. Then tear one stream's tail the way
	// a crash mid-append tears it: each stream tolerates its own torn final
	// record independently.
	srv.Close()
	ln.Close()
	pool.Stop()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	tearTail(t, lastSegmentFile(t, filepath.Join(dir, "shard-001")))

	// Control pool: the identical phase A + B traffic, journal-less and
	// uninterrupted.
	factory := fleet.LightMonitorFactory()
	ctl := fleet.NewPool(fleet.Options{Shards: shards})
	defer ctl.Stop()
	discard := func(wire.Message) error { return nil }
	for i := 0; i < devices; i++ {
		id := cpID(i)
		if err := ctl.AddRemoteDevice(id, factory, discard); err != nil {
			t.Fatal(err)
		}
		send := func(n int, fromMs int64, hbAt sim.Time) {
			for j := 0; j < n; j++ {
				at := sim.Time(fromMs+int64(j)*10) * sim.Millisecond
				ev := event.Event{Kind: event.Output, Name: "out", Source: id, At: at}.With("x", levelOf(i))
				if err := ctl.Dispatch(id, ev); err != nil {
					t.Fatal(err)
				}
			}
			if err := ctl.AdvanceDevice(id, hbAt); err != nil {
				t.Fatal(err)
			}
		}
		send(framesA, 10, hbA)
		send(framesB, fromB, hbB)
	}
	if err := ctl.Sync(); err != nil {
		t.Fatal(err)
	}
	want := ctl.Rollup()

	// Reboot: rebuild a fresh pool from the journal. Replay must restore
	// phase A from the checkpoint records and re-dispatch only phase B.
	rec := fleet.NewPool(fleet.Options{Shards: shards})
	defer rec.Stop()
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr, fleet.LightMonitorFactory())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if !jr.Torn() {
		t.Fatal("replay did not notice the torn shard tail")
	}
	jr.Close()
	if st.Frames != devices*framesB {
		t.Fatalf("replay re-dispatched %d frames, want only the %d post-checkpoint ones", st.Frames, devices*framesB)
	}
	if st.Checkpoints != devices+shards {
		t.Fatalf("replay restored %d checkpoint records, want %d device + %d shard", st.Checkpoints, devices, shards)
	}
	if st.Devices != devices || st.Heartbeats != devices {
		t.Fatalf("replay stats = %s, want %d devices and heartbeats", st, devices)
	}

	// The recovered fleet is byte-identical to the fleet that never crashed:
	// every monitor counter, dispatch total and error report — with phase A
	// reconstructed purely from checkpoint records.
	got := rec.Rollup()
	if got != want {
		t.Fatalf("recovered rollup %+v != control rollup %+v", got, want)
	}
	faulty := devices / faultyEvery
	if got.Reports != uint64(faulty) {
		t.Fatalf("recovered pool flagged %d devices, want exactly the %d faulty ones", got.Reports, faulty)
	}
}

// tearTail appends the prefix of a record — a length header promising more
// payload than the file holds — to the segment at path.
func tearTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	torn := append([]byte{0, 0, 2, 0, 0xde, 0xad, 0xbe, 0xef}, make([]byte, 17)...)
	if _, err := f.Write(torn); err != nil {
		t.Fatal(err)
	}
	f.Close()
}
