# Standard gate: build + vet + race-enabled tests. `make check` is what CI
# and pre-merge runs; the race detector is required because event.Bus and
# internal/fleet are concurrent by design. TESTFLAGS threads extra `go test`
# flags through the gate — CI's race job uses `make check TESTFLAGS=-short`
# to keep wall time bounded (the long 120-device e2e and the shard sweep run
# in CI's smoke job instead). `make docs` is the documentation gate: vet
# plus a check that every package (and command) carries a godoc package
# comment. `make fuzz` smoke-runs the wire codec and journal reader fuzz
# targets for FUZZTIME each (default 10s) — the same invocation CI's smoke
# job uses. `make bench` runs every benchmark and writes machine-readable
# results to $(BENCHJSON); BENCHFLAGS threads extra `go test` flags through
# (CI's smoke job uses `-benchtime=1x` for a fast correctness pass). `make
# cover` writes a coverage profile to cover.out and prints the per-function
# summary.

GO ?= go
TESTFLAGS ?=
BENCHFLAGS ?=
FUZZTIME ?= 10s

.PHONY: check build vet test test-race bench fuzz cover docs experiments clean

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test $(TESTFLAGS) ./...

test-race:
	$(GO) test -race $(TESTFLAGS) ./...

# bench runs the full benchmark suite — the per-experiment benchmarks
# (E1-E14), the wire codec pairs (BenchmarkWireJSON / BenchmarkWireBinary
# and the snapshot-frame pair BenchmarkSnapshotJSON / BenchmarkSnapshotBinary),
# the networked fleet-ingestion benchmark (journal off/flat/sharded, the
# relaxed ack-on-dispatch durability tier, recovery controller and diagnosis
# engine attached, the flow=on credit-window variant, and the trace=on
# tracing-plane variant — held within 5% of the untraced baseline — each
# reporting the latency-SLO plane's p50/p99/p999 ingest-to-dispatch
# quantiles),
# BenchmarkJournalAppend, BenchmarkCheckpointReplay (cold boot with and
# without a checkpoint resume point), BenchmarkControllerReport,
# BenchmarkFleetDiagnosis (evidence fold + parallel ranking at the paper's
# 60 000-block scale) and BenchmarkFederationUplink (the edge→aggregator
# rollup-delta cycle: deltas/s and bytes/delta) — and additionally emits
# machine-readable results to
# $(BENCHJSON) via cmd/benchjson (frames/s, ns/op, allocs/op, p99-ms, ...),
# so the perf trajectory is tracked across PRs. $(BENCHJSON) is committed
# once per PR; the raw transcript in bench.out is scratch output and must
# not be committed (CI fails the tree if it is).
BENCHJSON ?= BENCH_10.json
bench:
	@$(GO) test -bench . -benchmem $(BENCHFLAGS) ./... > bench.out; status=$$?; \
	cat bench.out; \
	if [ $$status -ne 0 ]; then exit $$status; fi; \
	$(GO) run ./cmd/benchjson -in bench.out -out $(BENCHJSON)

# fuzz smoke-runs both native fuzz targets: the wire codec (FuzzDecode —
# random frames through both codecs must be cleanly rejected or decoded,
# never panic) and the journal reader (FuzzJournalReader — random segment
# bytes must classify as torn tail or CorruptError, never panic). CI's
# smoke job runs exactly this; raise FUZZTIME locally for a deeper hunt.
fuzz:
	$(GO) test -fuzz=FuzzDecode -fuzztime=$(FUZZTIME) ./internal/wire
	$(GO) test -fuzz=FuzzJournalReader -fuzztime=$(FUZZTIME) ./internal/journal

# cover writes cover.out and prints the per-function coverage summary.
cover:
	$(GO) test $(TESTFLAGS) -coverprofile=cover.out ./...
	$(GO) tool cover -func=cover.out

# docs fails when any package lacks a godoc package comment ("// Package x"
# for libraries, "// Command x" for mains) in any of its non-test files,
# or when ARCHITECTURE.md §2.9's wire frame registry disagrees with the
# binary codec's tag map (TestFrameRegistry in internal/wire).
# The failure flag is checked in its own `if` statement: chaining it as
# `[ $fail -eq 0 ] && echo ok || exit 1` would route a failed echo into the
# exit-1 branch and make the target's status depend on the chain's last
# command rather than the flag.
docs: vet
	@fail=0; \
	for dir in $$(find . -name '*.go' -not -name '*_test.go' -not -path './.git/*' | xargs -n1 dirname | sort -u); do \
		if ! find $$dir -maxdepth 1 -name '*.go' -not -name '*_test.go' \
			| xargs grep -lqE '^// (Package|Command) ' 2>/dev/null; then \
			echo "missing package comment: $$dir"; fail=1; \
		fi; \
	done; \
	if [ $$fail -ne 0 ]; then exit 1; fi; \
	echo "docs: every package has a package comment"
	@$(GO) test ./internal/wire -run TestFrameRegistry >/dev/null
	@echo "docs: ARCHITECTURE.md §2.9 frame registry matches the codec"

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
