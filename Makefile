# Standard gate: build + vet + race-enabled tests. `make check` is what CI
# and pre-merge runs; the race detector is required because event.Bus and
# internal/fleet are concurrent by design. `make docs` is the documentation
# gate: vet plus a check that every package (and command) carries a godoc
# package comment.

GO ?= go

.PHONY: check build vet test test-race bench docs experiments clean

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# bench runs the full benchmark suite, including the per-experiment
# benchmarks (E1-E14), the wire codec pair (BenchmarkWireJSON /
# BenchmarkWireBinary) and the networked fleet-ingestion benchmark.
bench:
	$(GO) test -bench . -benchmem ./...

# docs fails when any package lacks a godoc package comment ("// Package x"
# for libraries, "// Command x" for mains) in any of its non-test files.
docs: vet
	@fail=0; \
	for dir in $$(find . -name '*.go' -not -name '*_test.go' -not -path './.git/*' | xargs -n1 dirname | sort -u); do \
		if ! find $$dir -maxdepth 1 -name '*.go' -not -name '*_test.go' \
			| xargs grep -lqE '^// (Package|Command) ' 2>/dev/null; then \
			echo "missing package comment: $$dir"; fail=1; \
		fi; \
	done; \
	[ $$fail -eq 0 ] && echo "docs: every package has a package comment" || exit 1

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
