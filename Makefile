# Standard gate: build + vet + race-enabled tests. `make check` is what CI
# and pre-merge runs; the race detector is required because event.Bus and
# internal/fleet are concurrent by design.

GO ?= go

.PHONY: check build vet test test-race bench experiments clean

check: build vet test-race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench . -benchmem ./...

experiments:
	$(GO) run ./cmd/experiments

clean:
	$(GO) clean ./...
