package trader_test

// End-to-end test of the fleet diagnosis plane (ISSUE 5): 13 remote devices
// stream through a journaling ingestion server with the recovery controller
// and the diagnosis engine attached. One device carries an injected faulty
// block in its teletext feature AND streams deviating observations, so the
// controller escalates it past tolerate; the engine must then pull coverage
// snapshots from the faulty device and a healthy cohort over the wire,
// fold them into the fleet spectrum, and rank the injected block first
// (top 1 is required here: the cohort has ≥ 8 healthy devices). Closing the
// loop, `journal -replay` must reconstruct a byte-identical ranking from
// the labeled evidence records alone, and the pool replay must absorb the
// evidence records without disturbing frame replay.

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trader/internal/control"
	"trader/internal/diagnose"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/spectrum"
	"trader/internal/wire"
)

// diagClient is a remote SUO with a spectral flight recorder: it streams
// observations, heartbeats once per round (rotating its coverage window),
// and answers snapshot pulls — the in-test twin of tvsim's -connect client
// with -diagnose on the daemon.
type diagClient struct {
	t   *testing.T
	id  string
	wc  *wire.Conn
	rec *diagnose.Recorder

	lastAt atomic.Int64
	echo   chan sim.Time
	pulls  atomic.Uint64
}

func dialDiag(t *testing.T, addr, id string, rec *diagnose.Recorder) *diagClient {
	t.Helper()
	wc, err := wire.Dial(addr, id, wire.CodecBinary)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	c := &diagClient{t: t, id: id, wc: wc, rec: rec, echo: make(chan sim.Time, 64)}
	go c.read()
	return c
}

func (c *diagClient) read() {
	for {
		msg, err := c.wc.Decode()
		if err != nil {
			return
		}
		switch msg.Type {
		case wire.TypeHeartbeat:
			select {
			case c.echo <- msg.At:
			default:
			}
		case wire.TypeSnapshotReq:
			c.pulls.Add(1)
			_ = c.wc.Encode(wire.Message{Type: wire.TypeSnapshot, SUO: c.id,
				At: sim.Time(c.lastAt.Load()), Snapshot: c.rec.Snapshot()})
		case wire.TypeControl:
			if msg.Control == wire.CtrlReset {
				_ = c.wc.Encode(wire.Ack(c.id, wire.CtrlReset, sim.Time(c.lastAt.Load())))
			}
		}
	}
}

func (c *diagClient) frame(at sim.Time, x float64) {
	c.lastAt.Store(int64(at))
	ev := event.Event{Kind: event.Output, Name: "out", Source: c.id, At: at}.With("x", x)
	_ = c.wc.SendEvent(c.id, ev)
}

// heartbeat closes the round: flush barrier on the wire, window boundary in
// the recorder.
func (c *diagClient) heartbeat(at sim.Time) {
	c.lastAt.Store(int64(at))
	if c.wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: c.id, At: at}) != nil {
		return
	}
	select {
	case <-c.echo:
	case <-time.After(2 * time.Second):
	}
	c.rec.Rotate(at)
}

func TestE2EFleetDiagnosis(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping fleet-diagnosis e2e in -short mode")
	}
	const (
		devices = 13 // 1 faulty + 12 healthy: the cohort bar for a top-1 ranking
		blocks  = 512
		cohort  = 8
		rounds  = 12
		tick    = 100 * sim.Millisecond
		topN    = 5
	)
	id := func(i int) string { return fmt.Sprintf("dx-%02d", i) }
	faulty := func(i int) bool { return i == 0 }

	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 4})
	defer pool.Stop()
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw}
	defer srv.Close()

	eng := diagnose.Attach(pool, diagnose.Options{
		Requester: srv, Journal: jw, Blocks: blocks, Cohort: cohort, Logf: t.Logf})
	defer eng.Close()
	srv.OnSnapshot = eng.HandleSnapshot

	// Resets never exhaust, so the faulty device keeps streaming (no
	// restart/quarantine churn) while every post-tolerate report confirms
	// the escalation the diagnosis pull hangs off.
	pol := control.Policy{Name: "diag-e2e", Tolerate: 1, Resets: 1000, Restarts: 1,
		RestartLatency: 50 * sim.Millisecond}
	ctl := control.Attach(pool, control.Options{
		Actuator: srv, Journal: jw, Policy: pol, Logf: t.Logf,
		OnEscalate: eng.HandleAction,
	})
	defer ctl.Close()
	srv.OnAck = ctl.HandleAck

	addr := "unix:" + filepath.Join(t.TempDir(), "dx.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// Every device plays the same per-round feature scenario, so healthy
	// peers exonerate the shared code; the faulty device's teletext build
	// additionally executes the injected fault block on every invocation.
	recs := make([]*diagnose.Recorder, devices)
	var faultBlock int
	for i := range recs {
		recs[i] = diagnose.NewRecorder(diagnose.RecorderOptions{
			Blocks: blocks, Windows: rounds, Seed: int64(i + 1)})
		if faulty(i) {
			faultBlock = recs[i].InjectFault("teletext")
		}
	}

	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialDiag(t, addr, id(i), recs[i])
			defer c.wc.Close()
			x := 0.0
			if faulty(i) {
				x = 2.0 // persistent deviation: the detector flags every compare
			}
			for n := 1; n <= rounds; n++ {
				at := sim.Time(n) * tick
				recs[i].Press("teletext")
				recs[i].Press("volume")
				recs[i].Press("zapping")
				c.frame(at, x)
				c.heartbeat(at)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// The escalation fired and every pull of the final episode resolved.
	waitFor(t, "diagnosis evidence folded", func() bool {
		ro := eng.Rollup()
		return ro.Episodes >= 1 && ro.Snapshots >= uint64(1+cohort) && ro.Pending == 0
	})
	ctl.Sync()
	eng.Sync()
	ro := eng.Rollup()
	if ro.JournalErrors != 0 || ro.Dropped != 0 || ro.Malformed != 0 {
		t.Fatalf("engine lost evidence: %s", ro)
	}
	if ro.FailWindows == 0 || ro.PassWindows == 0 {
		t.Fatalf("both labels must contribute: %s", ro)
	}

	// 1. The fleet-aggregated ranking places the injected block first (≥ 8
	// healthy cohort devices answered), attributed to its feature, and the
	// FMEA-weighted verdict names the feature.
	live := eng.Result(topN)
	if len(live.Ranking) != topN {
		t.Fatalf("ranking has %d entries, want %d", len(live.Ranking), topN)
	}
	if live.Ranking[0].Block != faultBlock {
		t.Fatalf("top suspect is block %d, want injected fault %d\n%s",
			live.Ranking[0].Block, faultBlock, live)
	}
	if live.Ranking[0].Component != "teletext" {
		t.Fatalf("top suspect attributed to %q\n%s", live.Ranking[0].Component, live)
	}
	if len(live.Verdict) == 0 || live.Verdict[0].Component != "teletext" {
		t.Fatalf("verdict does not name teletext:\n%s", live)
	}

	// 2. Shut the plane down and replay the journal: the diagnosis
	// reconstructed offline from the labeled evidence records must format
	// byte-identically to the live result.
	srv.Close()
	ln.Close()
	ctl.Close()
	eng.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	replayed, rst, err := diagnose.Replay(jr, spectrum.Ochiai, topN)
	jr.Close()
	if err != nil {
		t.Fatal(err)
	}
	if replayed == nil || rst.Snapshots != int(ro.Snapshots) {
		t.Fatalf("replay folded %d snapshots, live folded %d", rst.Snapshots, ro.Snapshots)
	}
	if got, want := replayed.String(), live.String(); got != want {
		t.Fatalf("replayed ranking not byte-identical:\nlive:\n%s\nreplayed:\n%s", want, got)
	}

	// 3. The pool replay absorbs the evidence records (counting them)
	// without disturbing frame replay.
	rec := fleet.NewPool(fleet.Options{Shards: 4})
	defer rec.Stop()
	jr2, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr2, fleet.LightMonitorFactory())
	jr2.Close()
	if err != nil {
		t.Fatalf("pool replay: %v", err)
	}
	if st.Evidence != int(ro.Snapshots) {
		t.Fatalf("pool replay counted %d evidence records, want %d", st.Evidence, ro.Snapshots)
	}
	if st.Devices != devices {
		t.Fatalf("pool replay rebuilt %d devices, want %d", st.Devices, devices)
	}
}
