package trader_test

// End-to-end test of the networked fleet ingestion path (ISSUE 2): many
// remote SUO clients — the same wire client `tvsim -connect` uses — stream
// through a listening ingestion server into one sharded fleet.Pool, over a
// real Unix socket, with codec negotiation, live disconnects and stats
// conservation checked along the way.

import (
	"fmt"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/sim"
	"trader/internal/wire"
)

// e2eClient is one remote SUO: a handshaken connection plus a reader
// goroutine that counts the monitor's error frames and signals heartbeat
// echoes (the drain barrier).
type e2eClient struct {
	id      string
	conn    *wire.Conn
	mu      sync.Mutex
	reports int
	echo    chan sim.Time
}

func dialE2E(t *testing.T, addr, id, codec string) *e2eClient {
	t.Helper()
	conn, err := wire.Dial(addr, id, codec)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	c := &e2eClient{id: id, conn: conn, echo: make(chan sim.Time, 16)}
	go func() {
		for {
			msg, err := conn.Decode()
			if err != nil {
				return
			}
			switch msg.Type {
			case wire.TypeError:
				c.mu.Lock()
				c.reports++
				c.mu.Unlock()
			case wire.TypeHeartbeat:
				c.echo <- msg.At
			}
		}
	}()
	return c
}

func (c *e2eClient) reportCount() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reports
}

// stream sends n observations of the commanded level x at 10ms spacing
// starting from fromMs, then heartbeats and waits for the echo, so on
// return every observation has been through this device's monitor.
func (c *e2eClient) stream(t *testing.T, n int, x float64, fromMs int64) {
	t.Helper()
	for i := 0; i < n; i++ {
		at := sim.Time(fromMs+int64(i)*10) * sim.Millisecond
		ev := event.Event{Kind: event.Output, Name: "out", Source: c.id, At: at}.With("x", x)
		if err := c.conn.SendEvent(c.id, ev); err != nil {
			t.Errorf("%s: send: %v", c.id, err)
			return
		}
	}
	hbAt := sim.Time(fromMs+int64(n)*10) * sim.Millisecond
	if err := c.conn.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: c.id, At: hbAt}); err != nil {
		t.Errorf("%s: heartbeat: %v", c.id, err)
		return
	}
	select {
	case <-c.echo:
	case <-time.After(10 * time.Second):
		t.Errorf("%s: heartbeat echo never arrived", c.id)
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestE2EFleetIngestion(t *testing.T) {
	if testing.Short() {
		// CI's race job runs -short for bounded wall time; the smoke job
		// runs the full suite, so this 120-device run is never lost.
		t.Skip("skipping 120-device e2e in -short mode")
	}
	const (
		devices     = 120
		framesEach  = 40
		faultyEvery = 10 // every 10th device streams a deviating level
	)

	pool := fleet.NewPool(fleet.Options{Shards: 4})
	defer pool.Stop()
	srv := &fleet.Server{Pool: pool, Factory: fleet.LightMonitorFactory(), HelloTimeout: 5 * time.Second}
	defer srv.Close()
	addr := "unix:" + filepath.Join(t.TempDir(), "e2e.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// Phase 1: connect the whole fleet, alternating codecs per connection.
	clients := make([]*e2eClient, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			codec := wire.CodecBinary
			if i%2 == 1 {
				codec = wire.CodecJSON
			}
			clients[i] = dialE2E(t, addr, fmt.Sprintf("e2e-%06d", i), codec)
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	waitFor(t, "all devices registered", func() bool { return pool.Size() == devices })

	// Phase 2: every device streams concurrently; faulty ones deviate from
	// the spec model's commanded level 0 and must be flagged.
	for i, c := range clients {
		wg.Add(1)
		go func(i int, c *e2eClient) {
			defer wg.Done()
			x := 0.0
			if i%faultyEvery == 0 {
				x = 2.0
			}
			c.stream(t, framesEach, x, 10)
		}(i, c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Stats conservation: the fleet rollup equals the per-device sum, every
	// sent frame was dispatched to a live device, and exactly the faulty
	// devices were flagged — across the wire, not just in-process.
	ro := pool.Rollup()
	if ro.Devices != devices {
		t.Fatalf("rollup devices = %d, want %d", ro.Devices, devices)
	}
	wantFrames := uint64(devices * framesEach)
	if ro.Dispatched != wantFrames || ro.Dropped != 0 {
		t.Fatalf("dispatched = %d (dropped %d), want %d dispatched, 0 dropped", ro.Dispatched, ro.Dropped, wantFrames)
	}
	var sum core.MonitorStats
	per := pool.DeviceStats()
	for _, st := range per {
		sum.Add(st)
	}
	if len(per) != devices || sum != ro.Monitor {
		t.Fatalf("per-device sum %+v != rollup %+v over %d devices", sum, ro.Monitor, len(per))
	}
	if sum.OutputsSeen != wantFrames {
		t.Fatalf("monitors saw %d outputs, want %d", sum.OutputsSeen, wantFrames)
	}
	faulty := devices / faultyEvery
	if ro.Reports != uint64(faulty) {
		t.Fatalf("fleet flagged %d devices, want exactly the %d faulty ones", ro.Reports, faulty)
	}
	for i, c := range clients {
		want := 0
		if i%faultyEvery == 0 {
			want = 1
		}
		if got := c.reportCount(); got != want {
			t.Errorf("%s received %d error frames, want %d", c.id, got, want)
		}
	}
	cs := srv.Stats()
	if cs.Accepted != devices || cs.Frames != wantFrames {
		t.Fatalf("server stats = %+v", cs)
	}

	// Phase 3: live churn — half the fleet disconnects mid-session while
	// the survivors keep streaming; the daemon must shed exactly the
	// departed devices and keep ingesting.
	for i := 0; i < devices/2; i++ {
		clients[i].conn.Close()
	}
	waitFor(t, "departed devices removed", func() bool { return pool.Size() == devices/2 })
	for _, c := range clients[devices/2:] {
		wg.Add(1)
		go func(c *e2eClient) {
			defer wg.Done()
			c.stream(t, 10, 0, 10+framesEach*10)
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	ro = pool.Rollup()
	if ro.Devices != devices/2 || ro.Dropped != 0 {
		t.Fatalf("after churn: %d devices (dropped %d), want %d", ro.Devices, ro.Dropped, devices/2)
	}

	// A departed ID's shard slot is free: it can reconnect immediately.
	re := dialE2E(t, addr, clients[0].id, wire.CodecBinary)
	defer re.conn.Close()
	waitFor(t, "reconnect", func() bool { return pool.Size() == devices/2+1 })
	re.stream(t, 5, 0, 1000)
}
