package trader_test

// End-to-end test of the recovery control plane (ISSUE 4): 60 remote
// devices stream through a journaling ingestion server with the recovery
// controller attached; every 6th device injects a fault — alternating
// persistent deviations and silence — on a schedule. The controller must
// march exactly the faulty devices up the escalation ladder in order
// (tolerate → reset → restart → quarantine), the restarted clients must
// re-handshake and resume, quarantined devices must stop receiving
// dispatches, the recovery rollup's downtime must match the recovery
// manager's accounting, and a journal replay must reproduce the identical
// recovery-action sequence byte for byte.

import (
	"bytes"
	"fmt"
	"io"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trader/internal/control"
	"trader/internal/core"
	"trader/internal/event"
	"trader/internal/fleet"
	"trader/internal/journal"
	"trader/internal/sim"
	"trader/internal/statemachine"
	"trader/internal/wire"
)

// silenceMonitorFactory is LightMonitorFactory plus a silence deadline, so
// a device that goes quiet while heartbeating is reported by the silence
// detector — the second fault class this e2e injects.
func silenceMonitorFactory() fleet.MonitorFactory {
	return func(id string, seed int64) (*sim.Kernel, *core.Monitor, error) {
		k := sim.NewKernel(seed)
		r := statemachine.NewRegion("dev")
		r.Add(&statemachine.State{Name: "run", Entry: func(c *statemachine.Context) { c.Set("x", 0) }})
		model := statemachine.MustModel("dev-"+id, k, r)
		mon, err := core.NewMonitor(k, model, core.Configuration{
			Observables: []core.Observable{{Name: "x", EventName: "out", ValueName: "x", ModelVar: "x",
				Threshold: 0.25, Tolerance: 1, MaxSilence: 100 * sim.Millisecond}},
			CompareEvery: 10 * sim.Millisecond,
		})
		if err != nil {
			return nil, nil, err
		}
		if err := mon.Start(); err != nil {
			return nil, nil, err
		}
		return k, mon, nil
	}
}

// recoveryClient is a remote SUO that honors the control plane: it streams
// observations, acks resets, re-handshakes on restart and stops on
// quarantine — the in-test twin of tvsim's -connect client.
type recoveryClient struct {
	t        *testing.T
	addr, id string

	mu          sync.Mutex
	wc          *wire.Conn
	down        bool
	quarantined bool
	// stopped latches at close: a restart re-dial still in flight must
	// not resurrect the connection after the session ended.
	stopped bool

	lastAt              atomic.Int64
	reports             atomic.Uint64
	restartsHonored     atomic.Uint64
	quarantinesReceived atomic.Uint64
	echo                chan sim.Time
}

func dialRecovery(t *testing.T, addr, id string) *recoveryClient {
	t.Helper()
	c := &recoveryClient{t: t, addr: addr, id: id, echo: make(chan sim.Time, 64)}
	wc, err := wire.Dial(addr, id, wire.CodecBinary)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	c.wc = wc
	go c.read(wc)
	return c
}

func (c *recoveryClient) conn() *wire.Conn {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.down || c.wc == nil {
		return nil
	}
	return c.wc
}

func (c *recoveryClient) isQuarantined() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.quarantined
}

func (c *recoveryClient) read(wc *wire.Conn) {
	for {
		msg, err := wc.Decode()
		if err != nil {
			return
		}
		switch msg.Type {
		case wire.TypeError:
			c.reports.Add(1)
		case wire.TypeHeartbeat:
			select {
			case c.echo <- msg.At:
			default:
			}
		case wire.TypeControl:
			switch msg.Control {
			case wire.CtrlReset:
				if live := c.conn(); live != nil {
					ack := wire.Ack(c.id, wire.CtrlReset, sim.Time(c.lastAt.Load()))
					// Echo the push's trace context (nil when untraced), so
					// the server closes the exchange with a forced ack span.
					ack.Trace = msg.Trace
					_ = live.Encode(ack)
				}
			case wire.CtrlRestart:
				// Honored synchronously: a restarting SUO stops consuming
				// its old connection (anything still buffered there is
				// lost with it — the server re-delivers a quarantine
				// verdict on the next handshake). The next Decode sees the
				// closed old connection and ends this reader.
				c.restart(msg.Trace)
			case wire.CtrlQuarantine:
				c.quarantinesReceived.Add(1)
				c.mu.Lock()
				c.quarantined, c.down = true, true
				c.mu.Unlock()
				wc.Close()
				return
			}
		}
	}
}

func (c *recoveryClient) restart(tc *wire.TraceContext) {
	c.mu.Lock()
	if c.quarantined || c.stopped {
		c.mu.Unlock()
		return
	}
	c.down = true
	old := c.wc
	c.wc = nil
	c.mu.Unlock()
	if old != nil {
		old.Close()
	}
	var wc *wire.Conn
	var err error
	for try := 0; try < 100; try++ {
		if wc, err = wire.Dial(c.addr, c.id, wire.CodecBinary); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		c.t.Errorf("%s: restart re-handshake: %v", c.id, err)
		return
	}
	c.mu.Lock()
	if c.quarantined || c.stopped { // overtaken while re-dialing: stay down
		c.mu.Unlock()
		wc.Close()
		return
	}
	c.wc = wc
	c.down = false
	c.mu.Unlock()
	// Only now is the restart honored: re-handshaken and streaming again.
	c.restartsHonored.Add(1)
	ack := wire.Ack(c.id, wire.CtrlRestart, sim.Time(c.lastAt.Load()))
	ack.Trace = tc
	_ = wc.Encode(ack)
	go c.read(wc)
}

// frame streams one observation; lost frames while down are the downtime.
func (c *recoveryClient) frame(at sim.Time, x float64) {
	wc := c.conn()
	if wc == nil {
		return
	}
	c.lastAt.Store(int64(at))
	ev := event.Event{Kind: event.Output, Name: "out", Source: c.id, At: at}.With("x", x)
	_ = wc.SendEvent(c.id, ev)
}

// flush heartbeats and waits for the echo — the per-connection pacing
// barrier that keeps the client from outrunning its shard.
func (c *recoveryClient) flush(at sim.Time) {
	wc := c.conn()
	if wc == nil {
		return
	}
	c.lastAt.Store(int64(at))
	if wc.Encode(wire.Message{Type: wire.TypeHeartbeat, SUO: c.id, At: at}) != nil {
		return
	}
	select {
	case <-c.echo:
	case <-time.After(2 * time.Second):
	}
}

func (c *recoveryClient) close() {
	c.mu.Lock()
	wc := c.wc
	c.wc, c.down, c.stopped = nil, true, true
	c.mu.Unlock()
	if wc != nil {
		wc.Close()
	}
}

func TestE2EFaultInjectionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 60-device fault-injection e2e in -short mode")
	}
	const (
		devices     = 60
		faultyEvery = 6 // every 6th device injects a fault
		ticks       = 150
		tick        = 10 * sim.Millisecond
		latency     = 40 * sim.Millisecond
	)
	faulty := func(i int) bool { return i%faultyEvery == 0 }
	// Faulty devices alternate fault classes: deviations and silence.
	silent := func(i int) bool { return faulty(i) && (i/faultyEvery)%2 == 1 }
	id := func(i int) string { return fmt.Sprintf("fi-%03d", i) }

	dir := t.TempDir()
	jw, err := journal.Create(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	pool := fleet.NewPool(fleet.Options{Shards: 4})
	defer pool.Stop()
	srv := &fleet.Server{Pool: pool, Factory: silenceMonitorFactory(),
		HelloTimeout: 5 * time.Second, Journal: jw}
	defer srv.Close()

	var actMu sync.Mutex
	var live []control.Action
	pol := control.Policy{Name: "e2e", Tolerate: 1, Resets: 1, Restarts: 1,
		RestartLatency: latency, Cooldown: 10 * sim.Second}
	ctl := control.Attach(pool, control.Options{
		Actuator: srv, Journal: jw, Policy: pol, Logf: t.Logf,
		OnAction: func(a control.Action) {
			actMu.Lock()
			live = append(live, a)
			actMu.Unlock()
		},
	})
	defer ctl.Close()
	srv.OnAck = ctl.HandleAck

	addr := "unix:" + filepath.Join(t.TempDir(), "fi.sock")
	ln, err := wire.Listen(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go srv.Serve(ln)

	// The fleet streams concurrently. Healthy devices send a clean frame
	// every 10ms of virtual time; deviating devices send x=2 persistently;
	// silent devices stop observing after 100ms but keep heartbeating, so
	// only the silence detector can catch them. Faulty devices keep
	// producing evidence past the nominal horizon until the controller has
	// quarantined them (capped, so a stalled ladder fails the test).
	clients := make([]*recoveryClient, devices)
	var wg sync.WaitGroup
	for i := 0; i < devices; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := dialRecovery(t, addr, id(i))
			clients[i] = c
			defer c.close()
			x := 0.0
			if faulty(i) && !silent(i) {
				x = 2.0
			}
			step := func(n int) {
				at := sim.Time(n) * tick
				switch {
				case silent(i) && n > 10:
					if n%5 == 0 {
						c.flush(at)
					}
				default:
					c.frame(at, x)
					if n%10 == 0 {
						c.flush(at)
					}
				}
			}
			for n := 1; n <= ticks; n++ {
				if c.isQuarantined() {
					return
				}
				step(n)
			}
			if !faulty(i) {
				c.flush(sim.Time(ticks) * tick)
				return
			}
			for n := ticks + 1; n <= 2000 && !c.isQuarantined(); n++ {
				if c.conn() == nil {
					time.Sleep(5 * time.Millisecond) // mid-restart: wait it out
					continue
				}
				step(n)
			}
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	nFaulty := 0
	for i := 0; i < devices; i++ {
		if faulty(i) {
			nFaulty++
		}
	}
	waitFor(t, "all faulty devices quarantined", func() bool {
		return ctl.Rollup().Quarantined == nFaulty
	})
	ctl.Sync()

	// 1. The escalation ladder fired in order, per faulty device, exactly
	// once each — and never for a healthy device.
	ladder := []control.Rung{control.RungTolerate, control.RungReset, control.RungRestart, control.RungQuarantine}
	actMu.Lock()
	perDevice := make(map[string][]control.Action)
	for _, a := range live {
		perDevice[a.Device] = append(perDevice[a.Device], a)
	}
	liveFrames := make([]wire.Message, len(live))
	for i, a := range live {
		liveFrames[i] = a.Frame()
	}
	actMu.Unlock()
	if len(perDevice) != nFaulty {
		t.Fatalf("controller acted on %d devices, want the %d faulty ones", len(perDevice), nFaulty)
	}
	for i := 0; i < devices; i++ {
		acts := perDevice[id(i)]
		if !faulty(i) {
			if len(acts) != 0 {
				t.Fatalf("healthy %s drew actions %v", id(i), acts)
			}
			if n := clients[i].reports.Load(); n != 0 {
				t.Fatalf("healthy %s received %d error frames", id(i), n)
			}
			continue
		}
		if len(acts) != len(ladder) {
			t.Fatalf("%s: %d actions %v, want the full ladder", id(i), len(acts), acts)
		}
		for j, a := range acts {
			if a.Rung != ladder[j] {
				t.Fatalf("%s: action %d is %s, want %s (ladder out of order: %v)", id(i), j, a.Rung, ladder[j], acts)
			}
		}
		wantClass := control.ClassDeviation
		if silent(i) {
			wantClass = control.ClassSilence
		}
		for _, a := range acts {
			if a.Class != wantClass {
				t.Fatalf("%s: action %s classified %s, want %s", id(i), a.Rung, a.Class, wantClass)
			}
		}
		if n := clients[i].restartsHonored.Load(); n != 1 {
			t.Fatalf("%s honored %d restarts, want 1", id(i), n)
		}
		if n := clients[i].quarantinesReceived.Load(); n != 1 {
			t.Fatalf("%s received %d quarantines, want 1", id(i), n)
		}
	}

	// 2. Quarantined devices stop receiving dispatches: probe each one and
	// check its monitor does not move.
	before := pool.DeviceStats()
	qBase := pool.Rollup().Quarantined
	for i := 0; i < devices; i++ {
		if faulty(i) {
			ev := event.Event{Kind: event.Output, Name: "out", Source: "probe", At: 30 * sim.Second}.With("x", 9)
			if err := pool.Dispatch(id(i), ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := pool.Sync(); err != nil {
		t.Fatal(err)
	}
	ro := pool.Rollup()
	if ro.Quarantined != qBase+uint64(nFaulty) {
		t.Fatalf("quarantine drops %d, want %d more than the %d from the live run",
			ro.Quarantined, nFaulty, qBase)
	}
	after := pool.DeviceStats()
	for i := 0; i < devices; i++ {
		if faulty(i) && before[id(i)] != after[id(i)] {
			t.Fatalf("quarantined %s monitor moved on probe: %+v -> %+v", id(i), before[id(i)], after[id(i)])
		}
	}

	// 3. The recovery rollup's downtime is the recovery manager's
	// accounting: every faulty device completed exactly one restart of
	// exactly the policy latency (quarantine implies the restart finished).
	cro := ctl.Rollup()
	if cro.JournalErrors != 0 || cro.Dropped != 0 {
		t.Fatalf("controller lost evidence: %s", cro)
	}
	if cro.RestartsCompleted != uint64(nFaulty) {
		t.Fatalf("restarts completed = %d, want %d", cro.RestartsCompleted, nFaulty)
	}
	if want := sim.Time(nFaulty) * latency; cro.Downtime != want {
		t.Fatalf("downtime = %s, want %s (manager accounting)", cro.Downtime, want)
	}
	if cro.Silences == 0 || cro.Deviations == 0 {
		t.Fatalf("both fault classes must be observed: %s", cro)
	}
	if crit := control.Criticality(cro); len(crit) != 3 {
		t.Fatalf("criticality entries = %d, want 3", len(crit))
	}

	// 4. Replay reproduces the identical recovery-action sequence, byte
	// for byte, and re-applies it: the replayed pool has the same devices
	// quarantined.
	srv.Close()
	ln.Close()
	ctl.Close()
	if err := jw.Close(); err != nil {
		t.Fatal(err)
	}
	jr, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []wire.Message
	for {
		m, err := jr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("journal read: %v", err)
		}
		if m.Type == wire.TypeControl {
			replayed = append(replayed, m)
		}
	}
	jr.Close()
	if len(replayed) != len(liveFrames) {
		t.Fatalf("journal holds %d action records, live controller took %d", len(replayed), len(liveFrames))
	}
	for i := range liveFrames {
		want, err1 := wire.Binary.Append(nil, liveFrames[i])
		got, err2 := wire.Binary.Append(nil, replayed[i])
		if err1 != nil || err2 != nil {
			t.Fatal(err1, err2)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("action %d not byte-identical: live %+v, journal %+v", i, liveFrames[i], replayed[i])
		}
	}

	rec := fleet.NewPool(fleet.Options{Shards: 4})
	defer rec.Stop()
	jr2, err := journal.OpenReader(dir)
	if err != nil {
		t.Fatal(err)
	}
	st, err := rec.Replay(jr2, silenceMonitorFactory())
	jr2.Close()
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Actions != len(liveFrames) {
		t.Fatalf("replay re-applied %d actions, want %d", st.Actions, len(liveFrames))
	}
	if st.Devices != devices {
		t.Fatalf("replay rebuilt %d devices, want %d", st.Devices, devices)
	}
	// The replay itself re-drops frames journaled after each quarantine
	// action (the client kept streaming until it learned its standing), so
	// probe against that baseline: exactly the faulty devices must drop.
	qReplayed := rec.Rollup().Quarantined
	for i := 0; i < devices; i++ {
		ev := event.Event{Kind: event.Output, Name: "out", Source: "probe", At: 30 * sim.Second}.With("x", 9)
		if err := rec.Dispatch(id(i), ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := rec.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := rec.Rollup().Quarantined; got != qReplayed+uint64(nFaulty) {
		t.Fatalf("replayed pool dropped %d probes as quarantined (baseline %d), want exactly the %d faulty devices",
			got-qReplayed, qReplayed, nFaulty)
	}
}
